"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro list
    python -m repro run fig3d
    python -m repro run fig12 --scale quick
    python -m repro run table1 --out results.txt
    python -m repro run table1 --trace table1.json   # Chrome trace
    python -m repro run fig12 --format csv --seed 7
    python -m repro run all --scale quick
    python -m repro run fig12 --jobs 4                # parallel sweep
    python -m repro run fig12 --depth 4               # 4 op coroutines/client
    python -m repro run --list-indexes                # registry contents
    python -m repro run --list-workloads
    python -m repro perf                              # pinned perf suite
    python -m repro perf --check --tolerance 0.5
    python -m repro trace --index chime --workload C --out trace.json
    python -m repro run skew-sync --sync-mode adaptive   # lock-mode sweep
    python -m repro chaos --crash cn0/c0:lock --seed 7
    python -m repro chaos --sync-mode pessimistic --crash cn0/c0:lock
    python -m repro chaos --no-leases --crash cn0/c0:lock
    python -m repro chaos --loss 0.01 --delay 0.05 --outage 0:100us:300us
    python -m repro campaign run --indexes chime,sherman --seeds 3
    python -m repro campaign status
    python -m repro campaign report --out campaign-report.html
    python -m repro campaign diff

Figure names map to the experiment functions of
:mod:`repro.bench.experiments`; ``--scale`` picks a preset from
:mod:`repro.bench.scale`.  ``--trace`` records per-operation phase spans
via :mod:`repro.obs` and writes them as Chrome trace-event JSON (open in
``chrome://tracing`` or https://ui.perfetto.dev).  The ``trace``
subcommand runs a single workload point under full observability and
prints the latency flame summary plus the metrics snapshot.
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import io
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.bench import PRESETS, Scale
from repro.bench.report import format_table
from repro.bench import experiments as exp
from repro.core.adaptive import SYNC_MODES

#: Figure name -> (experiment callable, wants_scale).
EXPERIMENTS: Dict[str, tuple] = {
    "fig3a": (exp.fig3a_tradeoff, True),
    "fig3b": (exp.fig3b_limited_bandwidth, True),
    "fig3c": (exp.fig3c_limited_cache, True),
    "fig3d": (exp.fig3d_hashing, False),
    "fig4": (exp.fig4_micro, True),
    "table1": (exp.table1_rtts, True),
    "fig12": (exp.fig12_ycsb, True),
    "figpoint": (exp.fig12_point_families, True),
    "figplacement": (exp.figplacement, True),
    "figshard": (exp.figshard_scaleout, True),
    "fig13": (exp.fig13_variable_kv, True),
    "fig14": (exp.fig14_cache_consumption, True),
    "fig15": (exp.fig15_factor_analysis, True),
    "fig15b": (exp.fig15b_learned_branch, True),
    "fig16": (exp.fig16_sibling_validation, False),
    "fig17": (exp.fig17_speculative, True),
    "fig18a": (exp.fig18a_skewness, True),
    "fig18b": (exp.fig18b_cache_size, True),
    "fig18c": (exp.fig18c_inline_value_size, True),
    "fig18d": (exp.fig18d_indirect_value_size, True),
    "fig18e": (exp.fig18e_span_size, True),
    "fig18f": (exp.fig18f_neighborhood_size, True),
    "fig19a": (exp.fig19a_span_metrics, True),
    "fig19b": (exp.fig19b_neighborhood_load_factor, False),
    "fig19c": (exp.fig19c_hotspot_buffer, True),
    "ablation-cxl": (exp.ablation_cxl_atomics, True),
    "ablation-rdwc": (exp.ablation_rdwc, True),
    "ablation-locks": (exp.ablation_local_lock_table, True),
    "ablation-torn": (exp.ablation_torn_writes, True),
    "ablation-write-amp": (exp.ablation_write_amplification, True),
    "skew-sync": (exp.skew_sync_sweep, True),
}


def run_experiment(name: str, scale: Scale) -> List[dict]:
    func, wants_scale = EXPERIMENTS[name]
    return func(scale) if wants_scale else func()


def format_rows(rows: Sequence[dict], fmt: str, title: str = "") -> str:
    """Render experiment rows as a table, CSV, or JSON document."""
    if fmt == "table":
        return format_table(rows, title=title)
    if fmt == "csv":
        sink = io.StringIO()
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        writer = csv.DictWriter(sink, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
        return sink.getvalue().rstrip("\n")
    if fmt == "json":
        return json.dumps({"figure": title, "rows": list(rows)}, indent=2)
    raise ValueError(f"unknown format {fmt!r}")


def _apply_seed(scale: Scale, seed: Optional[int]) -> Scale:
    if seed is None:
        return scale
    return dataclasses.replace(scale, seed=seed)


def _list_indexes() -> None:
    from repro.registry import families
    rows = [{"index": f.name, "family": f.family,
             "kv_discrete": f.kv_discrete, "scan": f.supports_scan,
             "chaos": f.supports_chaos, "indirect": f.indirect_values,
             "model_routed": f.model_routed,
             "one_rtt": f.one_rtt_point, "offload": f.mn_offload,
             "dyn_place": f.dynamic_placement,
             "placement": f.default_placement,
             "description": f.description}
            for f in families()]
    print(format_table(rows, title="registered index families"))


def _list_workloads() -> None:
    from repro.workloads.ycsb import WORKLOADS
    rows = []
    for name, spec in WORKLOADS.items():
        row = {"workload": name}
        for fld in dataclasses.fields(spec):
            row[fld.name] = getattr(spec, fld.name)
        rows.append(row)
    print(format_table(rows, title="YCSB workload mixes"))


def _cmd_run(args) -> int:
    if args.list_indexes or args.list_workloads:
        try:
            if args.list_indexes:
                _list_indexes()
            if args.list_workloads:
                _list_workloads()
        except BrokenPipeError:  # e.g. `... --list-indexes | head`
            pass
        return 0
    if not args.figure:
        print("a figure name (or 'all') is required; "
              "try 'python -m repro list'", file=sys.stderr)
        return 2
    names = list(EXPERIMENTS) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"try 'python -m repro list'", file=sys.stderr)
        return 2
    scale = _apply_seed(PRESETS[args.scale], args.seed)
    if args.jobs is not None:
        if args.jobs < 1:
            print("--jobs must be >= 1", file=sys.stderr)
            return 2
        # Sweeps read the worker count from the environment (via
        # repro.bench.parallel.resolve_jobs), so one flag covers every
        # figure the selected run touches.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.depth is not None:
        if args.depth < 1:
            print("--depth must be >= 1", file=sys.stderr)
            return 2
        # Same pattern as --jobs: run_workload reads the pipeline depth
        # from the environment (via repro.sched.resolve_depth), so one
        # flag covers every point the selected figures run.
        os.environ["REPRO_DEPTH"] = str(args.depth)
    if args.sync_mode is not None:
        # Same pattern again: Scale.cluster_config reads the lock mode
        # from the environment (via repro.bench.scale._resolve_sync_mode),
        # so one flag covers every point — and sweep worker processes
        # inherit it.
        from repro.bench.scale import SYNC_MODE_ENV
        os.environ[SYNC_MODE_ENV] = args.sync_mode
    if args.partitions is not None:
        if args.partitions < 1:
            print("--partitions must be >= 1", file=sys.stderr)
            return 2
        # Same pattern once more: run_point resolves the partition count
        # through the environment (repro.bench.partition), so one flag
        # space-partitions every single run the selected figures make.
        from repro.bench.partition import PARTITIONS_ENV
        os.environ[PARTITIONS_ENV] = str(args.partitions)
    # Sharding knobs ride the same environment channel so every point
    # the selected figures run (including sweep worker processes) sees
    # them via Scale.cluster_config.
    from repro.bench.scale import (
        CACHE_MODE_ENV,
        NUM_MNS_ENV,
        REBALANCE_ENV,
        SHARDS_ENV,
    )
    if args.num_mns is not None:
        if args.num_mns < 1:
            print("--num-mns must be >= 1", file=sys.stderr)
            return 2
        os.environ[NUM_MNS_ENV] = str(args.num_mns)
    if args.shards is not None:
        if args.shards < 0:
            print("--shards must be >= 0", file=sys.stderr)
            return 2
        os.environ[SHARDS_ENV] = str(args.shards)
    elif args.num_mns is not None and args.num_mns > 1:
        # --num-mns alone means "scale out": default to one shard per MN
        # (pass --shards 0 explicitly for the legacy striped pool).
        os.environ[SHARDS_ENV] = str(args.num_mns)
    if args.cache_mode is not None:
        os.environ[CACHE_MODE_ENV] = args.cache_mode
    if args.rebalance:
        os.environ[REBALANCE_ENV] = "1"

    recorder = None
    if args.trace:
        try:
            open(args.trace, "a").close()  # fail before the run, not after
        except OSError as exc:
            print(f"cannot write trace file: {exc}", file=sys.stderr)
            return 2
        from repro import obs
        recorder = obs.recording()
        recorder.__enter__()
    try:
        for name in names:
            started = time.time()
            rows = run_experiment(name, scale)
            rendered = format_rows(rows, args.format,
                                   title=f"{name} (scale={scale.name})")
            print(rendered)
            if args.format == "table":
                print(f"[{name}: {time.time() - started:.1f}s]\n")
            if args.out:
                with open(args.out, "a") as sink:
                    sink.write(rendered + "\n\n")
    finally:
        if recorder is not None:
            recorder.__exit__(None, None, None)
    if recorder is not None:
        from repro.obs import write_chrome_trace
        write_chrome_trace(recorder.spans, args.trace,
                           metadata={"figures": names,
                                     "scale": scale.name,
                                     "seed": scale.seed})
        print(f"[trace: {len(recorder.spans)} spans -> {args.trace}]",
              file=sys.stderr)  # keep stdout clean for --format json/csv
    return 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.bench.runner import run_point
    from repro.errors import WorkloadError
    from repro.registry import get_family
    from repro.workloads.ycsb import WORKLOADS

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; "
              f"choose from {', '.join(sorted(WORKLOADS))}", file=sys.stderr)
        return 2
    scale = _apply_seed(PRESETS[args.scale], args.seed)
    config = scale.cluster_config(clients=args.clients,
                                  sync_mode=args.sync_mode)
    try:
        family = get_family(args.index)
        with obs.recording() as recorder:
            result = run_point(args.index, args.workload, scale.num_keys,
                               args.ops or scale.ops_per_client, config,
                               chime_overrides=scale.chime_overrides()
                               if family.accepts_overrides else None,
                               depth=args.depth)
    except WorkloadError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_table([result.summary()],
                       title=f"{args.index} / YCSB-{args.workload} "
                             f"(scale={scale.name}, seed={scale.seed})"))
    print()
    print(obs.flame_summary(recorder.spans))
    if args.out:
        obs.write_chrome_trace(
            recorder.spans, args.out,
            metadata={"index": args.index, "workload": args.workload,
                      "scale": scale.name, "seed": scale.seed})
        print(f"\n[trace: {len(recorder.spans)} spans -> {args.out}]")
    return 0


def _cmd_perf(args) -> int:
    from repro.bench import perf

    report = perf.run_suite(jobs=args.jobs)
    rows = []
    for name, point in report["points"].items():
        rows.append({"index": name, "wall_s": point["wall_s"],
                     "events": point["events"],
                     "events_per_sec": point["events_per_sec"],
                     "ops_per_sec": point["ops_per_sec"]})
    print(format_table(rows, title="repro perf (pinned suite)"))
    sweep = report["sweep_fig12_mini"]
    line = (f"[sweep: {sweep['points']} points, "
            f"serial {sweep['serial_wall_s']}s")
    if "parallel_wall_s" in sweep:
        line += (f", parallel({sweep['jobs']} jobs) "
                 f"{sweep['parallel_wall_s']}s, {sweep['speedup']}x")
    print(line + f"; chaos {report['chaos']['wall_s']}s "
                 f"{'OK' if report['chaos']['ok'] else 'FAILED'}]")
    partitioned = report.get("partitioned")
    if partitioned is not None:
        print(f"[partitioned ({partitioned['index']}, "
              f"{partitioned['partitions']} partitions): "
              f"{partitioned['wall_s']}s, "
              f"{'serial-identical' if partitioned['matches_serial'] else 'DIVERGED FROM SERIAL'}]")
    depth_sweep = report.get("depth_sweep", {})
    parts = [f"depth={p['depth']}: {p['sim_throughput_mops']} Mops"
             for p in depth_sweep.values() if isinstance(p, dict)]
    if parts:
        print(f"[depth sweep (chime, YCSB-C, "
              f"{depth_sweep.get('clients', '?')} clients): "
              f"{'; '.join(parts)}]")

    if args.check:
        baseline = perf.load_baseline(args.baseline)
        if baseline is None:
            print(f"no readable baseline at {args.baseline}",
                  file=sys.stderr)
            return 2
        ok, problems = perf.check_report(report, baseline,
                                         args.tolerance)
        for problem in problems:
            print(f"perf check: {problem}", file=sys.stderr)
        print(f"[perf check vs {args.baseline}: "
              f"{'OK' if ok else 'FAILED'} "
              f"(tolerance {args.tolerance})]")
        if args.out:
            perf.write_report(report, args.out)
            print(f"[wrote fresh report to {args.out}]")
        return 0 if ok else 1

    # Preserve the recorded pre-optimization reference block, if the
    # committed baseline carries one.
    existing = perf.load_baseline(args.baseline)
    if existing and "reference_before" in existing:
        report["reference_before"] = existing["reference_before"]
    perf.write_report(report, args.baseline)
    print(f"[wrote {args.baseline}]")
    return 0


def _parse_time(text: str) -> float:
    """Parse a simulated duration: '250us', '1.5ms', '0.001s', or seconds."""
    for suffix, unit in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if text.endswith(suffix):
            return float(text[:-len(suffix)]) * unit
    return float(text)


def _parse_crash(spec: str):
    """Parse ``owner[:point]`` crash specs.

    The point is either ``lock`` (the default: die right before the
    first WRITE verb, i.e. holding a leaf lock with nothing landed) or
    ``KIND[@NTH][:before|after]``, e.g. ``cn0/c1:read@3:after``.
    """
    owner, _, rest = spec.partition(":")
    if not owner:
        raise ValueError(f"crash spec needs an owner: {spec!r}")
    if not rest or rest == "lock":
        return owner, ("write", "write_batch"), 1, "before"
    when = "before"
    if rest.endswith((":before", ":after")):
        rest, _, when = rest.rpartition(":")
    kind, _, nth_text = rest.partition("@")
    return owner, (kind,), int(nth_text) if nth_text else 1, when


def _cmd_chaos(args) -> int:
    from repro.faults import ChaosConfig, run_chaos

    overrides: dict = {"seed": args.seed, "lock_leases": not args.no_leases}
    if args.index:
        overrides["index"] = args.index
    if args.sync_mode is not None:
        overrides["sync_mode"] = args.sync_mode
    if args.crash is not None:
        if args.crash:
            try:
                owner, kinds, nth, when = _parse_crash(args.crash)
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            overrides.update(crash_owner=owner, crash_kinds=kinds,
                             crash_nth=nth, crash_when=when)
        else:
            overrides["crash_owner"] = ""
    if args.loss:
        overrides["loss_probability"] = args.loss
    if args.delay:
        overrides["delay_probability"] = args.delay
    if args.lease_duration:
        overrides["lease_duration"] = _parse_time(args.lease_duration)
    if args.max_attempts:
        overrides["max_attempts"] = args.max_attempts
    if args.ops:
        overrides["ops_per_client"] = args.ops
    if args.keys:
        overrides["initial_keys"] = args.keys
        overrides["key_space"] = args.keys * 2
    if args.depth:
        overrides["pipeline_depth"] = args.depth
    outages = []
    for spec in args.outage or ():
        try:
            mn_text, start_text, end_text = spec.split(":")
            outages.append((int(mn_text), _parse_time(start_text),
                            _parse_time(end_text)))
        except ValueError:
            print(f"bad outage spec {spec!r} (want MN:START:END)",
                  file=sys.stderr)
            return 2
    if outages:
        overrides["mn_outages"] = tuple(outages)
    # Sharding knobs: explicit flag > environment > ChaosConfig default.
    from repro.bench.scale import (
        CACHE_MODE_ENV,
        NUM_MNS_ENV,
        SHARDS_ENV,
        _resolve_int_env,
    )
    num_mns = _resolve_int_env(args.num_mns, NUM_MNS_ENV)
    if num_mns is not None:
        overrides["num_mns"] = num_mns
    num_shards = _resolve_int_env(args.shards, SHARDS_ENV)
    if num_shards is None and num_mns is not None and num_mns > 1:
        num_shards = num_mns
    if num_shards is not None:
        overrides["num_shards"] = num_shards
    cache_mode = args.cache_mode or os.environ.get(CACHE_MODE_ENV, "").strip()
    if cache_mode:
        overrides["cache_mode"] = cache_mode
    migrations = []
    for spec in args.migrate or ():
        try:
            shard_text, mn_text, start_text = spec.split(":")
            migrations.append((int(shard_text), int(mn_text),
                               _parse_time(start_text)))
        except ValueError:
            print(f"bad migrate spec {spec!r} (want SHARD:MN:START)",
                  file=sys.stderr)
            return 2
    if migrations:
        overrides["migrations"] = tuple(migrations)
    cfg = ChaosConfig(**overrides)
    if args.partitions is not None and args.partitions > 1:
        from repro.bench.partition import run_chaos_partitioned
        payload = run_chaos_partitioned(cfg, args.partitions)
        print(json.dumps(payload, indent=2, sort_keys=True))
        ok = payload["invariants"]["ok"] and not payload["errors"]
        print(f"[chaos ({args.partitions} partitions, cross-checked): "
              f"{'OK' if ok else 'FAILED'} — "
              f"{len(payload['invariants']['violations'])} violations, "
              f"{len(payload['errors'])} client errors, "
              f"dead CNs {payload['dead_cns']}]", file=sys.stderr)
        return 0 if ok else 1
    result = run_chaos(cfg)
    print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    ok = result.invariants.ok and not result.errors
    print(f"[chaos: {'OK' if ok else 'FAILED'} — "
          f"{len(result.invariants.violations)} violations, "
          f"{len(result.errors)} client errors, "
          f"dead CNs {result.dead_cns}]", file=sys.stderr)
    return 0 if ok else 1


# --------------------------------------------------------------------------
# campaign — the repro.xpmt experiment service
# --------------------------------------------------------------------------

#: Default campaign store path (repo root, gitignored).
CAMPAIGN_DB = "campaigns.sqlite"


def _campaign_scale(args) -> Scale:
    """Resolve --scale (presets + the pinned 'perf' point) + overrides."""
    if args.scale == "perf":
        from repro.bench.perf import PERF_SCALE
        scale = PERF_SCALE
    else:
        scale = PRESETS[args.scale]
    overrides = {}
    if getattr(args, "num_keys", None):
        overrides["num_keys"] = args.num_keys
    if getattr(args, "ops", None):
        overrides["ops_per_client"] = args.ops
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _campaign_plan(args):
    from repro.xpmt import CampaignPlan, CellSpec

    scale = _campaign_scale(args)
    indexes = [n.strip() for n in args.indexes.split(",") if n.strip()]
    workloads = [w.strip().upper() for w in args.workloads.split(",")
                 if w.strip()]
    if args.clients:
        clients = [int(c) for c in args.clients.split(",")]
    else:
        clients = [scale.clients]
    cells = tuple(
        CellSpec(index, workload, count, depth=args.depth,
                 value_size=args.value_size, theta=args.theta,
                 span=args.span, neighborhood=args.neighborhood,
                 sync_mode=args.sync_mode,
                 num_mns=args.num_mns, cache_mode=args.cache_mode,
                 placement=args.placement)
        for index in indexes
        for workload in workloads
        for count in clients)
    base = args.seed_base if args.seed_base is not None else scale.seed
    seeds = tuple(base + i for i in range(args.seeds))
    return CampaignPlan(scale=scale, cells=cells, seeds=seeds,
                        name=args.name or "")


def _campaign_id_or_latest(store, requested: Optional[str],
                           parser_hint: str) -> Optional[str]:
    if requested:
        return requested
    campaigns = store.campaigns()
    if not campaigns:
        print(f"no campaigns in {store.path}; run "
              f"'python -m repro campaign run' first", file=sys.stderr)
        return None
    if len(campaigns) > 1:
        names = ", ".join(c["id"] for c in campaigns)
        print(f"multiple campaigns in {store.path} ({names}); "
              f"pick one with {parser_hint}", file=sys.stderr)
        return None
    return campaigns[0]["id"]


def _cmd_campaign(args) -> int:
    from repro.registry import get_family
    from repro.workloads.ycsb import WORKLOADS
    from repro.xpmt import CampaignStore

    if args.campaign_command == "run":
        try:
            plan = _campaign_plan(args)
        except KeyError as exc:
            print(f"bad campaign matrix: {exc}", file=sys.stderr)
            return 2
        for cell in plan.cells:
            try:
                get_family(cell.index)
            except KeyError:
                print(f"unknown index {cell.index!r}; see "
                      f"'repro run --list-indexes'", file=sys.stderr)
                return 2
            if cell.workload not in WORKLOADS:
                print(f"unknown workload {cell.workload!r}; choose from "
                      f"{', '.join(sorted(WORKLOADS))}", file=sys.stderr)
                return 2
        if not plan.cells:
            print("empty campaign matrix", file=sys.stderr)
            return 2
        if args.jobs is not None and args.jobs < 1:
            print("--jobs must be >= 1", file=sys.stderr)
            return 2
        with CampaignStore(args.db) as store:
            from repro.xpmt import run_campaign
            summary = run_campaign(store, plan, jobs=args.jobs,
                                   limit=args.limit, echo=print)
        print(summary.describe())
        return 0

    if args.campaign_command == "status":
        from repro.xpmt import campaign_status
        with CampaignStore(args.db) as store:
            rows = campaign_status(store)
            total = store.point_count()
        if not rows:
            print(f"no campaigns recorded in {args.db}")
            return 0
        print(format_table(rows, title=f"campaigns in {args.db} "
                                       f"({total} stored points)"))
        return 0

    if args.campaign_command == "report":
        from repro.xpmt import build_report
        with CampaignStore(args.db) as store:
            campaign_id = _campaign_id_or_latest(store, args.id, "--id")
            if campaign_id is None:
                return 2
            baseline = "" if args.no_baseline else args.baseline
            document, verdict = build_report(
                store, campaign_id, baseline_path=baseline,
                alpha=args.alpha, min_drop=args.min_drop,
                baseline_tolerance=args.baseline_tolerance)
        with open(args.out, "w") as sink:
            sink.write(document)
        for problem in verdict["problems"]:
            print(f"regression: {problem}", file=sys.stderr)
        for warning in verdict["warnings"]:
            print(f"warning: {warning}", file=sys.stderr)
        status = "PASS" if verdict["ok"] else "FAIL"
        print(f"[campaign {campaign_id}: {status} — "
              f"{len(verdict['checks'])} cells, "
              f"{len(verdict['problems'])} regressions, "
              f"{len(verdict['warnings'])} warnings -> {args.out}]")
        return 0 if verdict["ok"] else 1

    # diff
    from repro.xpmt import collect_cells, diff_cells
    with CampaignStore(args.db) as store:
        campaign_id = _campaign_id_or_latest(store, args.id, "--id")
        if campaign_id is None:
            return 2
        cells = collect_cells(store, campaign_id)
    if not cells:
        print(f"campaign {campaign_id} has no stored points",
              file=sys.stderr)
        return 2
    commits: List[str] = []
    for cell in cells:
        for commit in cell.commit_order:
            if commit not in commits:
                commits.append(commit)
    base = args.base or (commits[-2] if len(commits) >= 2 else None)
    head = args.head or commits[-1]
    if base is None:
        print("only one commit stored; nothing to diff against "
              "(pass --base)", file=sys.stderr)
        return 2
    rows = diff_cells(cells, base, head)
    print(format_table(rows, title=f"campaign {campaign_id}: "
                                   f"{base[:12]} -> {head[:12]}"))
    regressed = any(r["verdict"] == "REGRESSED" for r in rows)
    return 1 if regressed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate CHIME (SOSP '24) evaluation figures on "
                    "the simulated DM cluster.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")

    run_parser = sub.add_parser("run", help="run one figure (or 'all')")
    run_parser.add_argument("figure", nargs="?", default=None,
                            help="figure name or 'all'")
    run_parser.add_argument("--list-indexes", action="store_true",
                            help="list registered index families with "
                                 "their capability flags, then exit")
    run_parser.add_argument("--list-workloads", action="store_true",
                            help="list YCSB workload mixes, then exit")
    run_parser.add_argument("--scale", default="quick",
                            choices=sorted(PRESETS),
                            help="scaling preset (default: quick)")
    run_parser.add_argument("--out", default=None,
                            help="also append output to this file")
    run_parser.add_argument("--format", default="table",
                            choices=("table", "csv", "json"),
                            help="output format (default: table)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the preset's RNG seed")
    run_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="record per-op phase spans and write a "
                                 "Chrome trace-event JSON file")
    run_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes for sweep points "
                                 "(default: $REPRO_JOBS or cores-1; "
                                 "1 = serial; forced serial with --trace)")
    run_parser.add_argument("--depth", type=int, default=None, metavar="D",
                            help="op coroutines per client "
                                 "(default: $REPRO_DEPTH or 1 = the "
                                 "strictly serial client loop)")
    run_parser.add_argument("--sync-mode", default=None,
                            choices=SYNC_MODES,
                            help="lock synchronization mode "
                                 "(default: $REPRO_SYNC_MODE or "
                                 "optimistic)")
    run_parser.add_argument("--partitions", type=int, default=None,
                            metavar="N",
                            help="space-partition every single run over "
                                 "N processes (lockstep lookahead "
                                 "windows, byte-identical to serial; "
                                 "default: $REPRO_PARTITIONS or 1)")
    run_parser.add_argument("--num-mns", type=int, default=None,
                            metavar="M",
                            help="memory nodes per cluster "
                                 "(default: $REPRO_NUM_MNS or the "
                                 "experiment's own choice)")
    run_parser.add_argument("--shards", type=int, default=None,
                            metavar="S",
                            help="key-space shards (default: "
                                 "$REPRO_SHARDS; with --num-mns > 1 and "
                                 "no value, one shard per MN; 0 = the "
                                 "legacy striped pool)")
    run_parser.add_argument("--cache-mode", default=None,
                            choices=("shared", "partitioned"),
                            help="CN cache admission under sharding "
                                 "(default: $REPRO_CACHE_MODE or shared)")
    run_parser.add_argument("--rebalance", action="store_true",
                            help="run the hot-shard rebalancer (EWMA "
                                 "detection + online migration) alongside "
                                 "sharded workloads")

    trace_parser = sub.add_parser(
        "trace", help="trace one workload point (spans + metrics)")
    trace_parser.add_argument("--index", default="chime",
                              help="index legend name (default: chime)")
    trace_parser.add_argument("--workload", default="C",
                              help="YCSB workload letter (default: C)")
    trace_parser.add_argument("--scale", default="quick",
                              choices=sorted(PRESETS),
                              help="scaling preset (default: quick)")
    trace_parser.add_argument("--clients", type=int, default=None,
                              help="total client count (default: preset)")
    trace_parser.add_argument("--ops", type=int, default=None,
                              help="ops per client (default: preset)")
    trace_parser.add_argument("--seed", type=int, default=None,
                              help="override the preset's RNG seed")
    trace_parser.add_argument("--depth", type=int, default=None,
                              metavar="D",
                              help="op coroutines per client (default: "
                                   "$REPRO_DEPTH or 1)")
    trace_parser.add_argument("--sync-mode", default=None,
                              choices=SYNC_MODES,
                              help="lock synchronization mode "
                                   "(default: $REPRO_SYNC_MODE or "
                                   "optimistic)")
    trace_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write Chrome trace-event JSON here")
    perf_parser = sub.add_parser(
        "perf", help="run the pinned simulator performance suite")
    perf_parser.add_argument("--check", action="store_true",
                             help="compare against the committed baseline "
                                  "instead of rewriting it")
    perf_parser.add_argument("--tolerance", type=float, default=0.5,
                             help="allowed relative events/sec regression "
                                  "for --check (default: 0.5)")
    perf_parser.add_argument("--baseline", default="BENCH_perf.json",
                             metavar="PATH",
                             help="baseline file (default: BENCH_perf.json)")
    perf_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                             help="worker processes for the sweep stage "
                                  "(default: $REPRO_JOBS or cores-1)")
    perf_parser.add_argument("--out", default=None, metavar="PATH",
                             help="with --check: also write the fresh "
                                  "report here (for CI artifacts)")

    chaos_parser = sub.add_parser(
        "chaos", help="run a seeded fault-injection campaign against CHIME")
    chaos_parser.add_argument("--index", default=None,
                              help="index family under test (default: "
                                   "chime; any registry family with "
                                   "supports_chaos)")
    chaos_parser.add_argument("--seed", type=int, default=7,
                              help="campaign seed (workload + fault draws)")
    chaos_parser.add_argument("--crash", default=None, metavar="SPEC",
                              help="crash spec 'owner[:point]', e.g. "
                                   "'cn0/c0:lock' (default campaign) or "
                                   "'cn0/c1:read@3:after'; '' disables")
    chaos_parser.add_argument("--no-leases", action="store_true",
                              help="disable lease-based lock recovery "
                                   "(demonstrates the orphaned-lock hang)")
    chaos_parser.add_argument("--lease-duration", default=None,
                              metavar="DUR", help="lease window, e.g. 250us")
    chaos_parser.add_argument("--loss", type=float, default=0.0,
                              help="per-verb loss probability")
    chaos_parser.add_argument("--delay", type=float, default=0.0,
                              help="per-verb latency-spike probability")
    chaos_parser.add_argument("--outage", action="append", metavar="SPEC",
                              help="MN outage 'MN:START:END' (repeatable), "
                                   "e.g. '0:100us:300us'")
    chaos_parser.add_argument("--max-attempts", type=int, default=None,
                              help="retry budget per operation")
    chaos_parser.add_argument("--ops", type=int, default=None,
                              help="ops per client")
    chaos_parser.add_argument("--keys", type=int, default=None,
                              help="bulk-loaded key count")
    chaos_parser.add_argument("--depth", type=int, default=None,
                              metavar="D",
                              help="op coroutines per client (default: 1)")
    chaos_parser.add_argument("--partitions", type=int, default=None,
                              metavar="N",
                              help="mirror the campaign over N lockstep "
                                   "partition processes and cross-check "
                                   "the results are byte-identical")
    chaos_parser.add_argument("--sync-mode", default=None,
                              choices=SYNC_MODES,
                              help="lock synchronization mode "
                                   "(default: optimistic)")
    chaos_parser.add_argument("--num-mns", type=int, default=None,
                              metavar="M",
                              help="memory nodes (default: $REPRO_NUM_MNS "
                                   "or 1)")
    chaos_parser.add_argument("--shards", type=int, default=None,
                              metavar="S",
                              help="key-space shards (default: "
                                   "$REPRO_SHARDS; with --num-mns > 1 and "
                                   "no value, one shard per MN)")
    chaos_parser.add_argument("--cache-mode", default=None,
                              choices=("shared", "partitioned"),
                              help="CN cache admission under sharding "
                                   "(default: $REPRO_CACHE_MODE or shared)")
    chaos_parser.add_argument("--migrate", action="append", metavar="SPEC",
                              help="online shard migration "
                                   "'SHARD:MN:START' (repeatable), e.g. "
                                   "'1:0:60us'")

    campaign_parser = sub.add_parser(
        "campaign",
        help="incremental multi-seed sweep campaigns (repro.xpmt)")
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command",
                                                  required=True)

    def _db_arg(p):
        p.add_argument("--db", default=CAMPAIGN_DB, metavar="PATH",
                       help=f"campaign sqlite store "
                            f"(default: {CAMPAIGN_DB})")

    crun = campaign_sub.add_parser(
        "run", help="run (or resume) a campaign; stored points are "
                    "skipped")
    _db_arg(crun)
    crun.add_argument("--name", default="", help="campaign id (default: "
                                                 "derived from the matrix)")
    crun.add_argument("--scale", default="quick",
                      choices=sorted(PRESETS) + ["perf"],
                      help="scaling preset; 'perf' pins the BENCH_perf "
                           "operating point (default: quick)")
    crun.add_argument("--indexes", default="chime", metavar="A,B",
                      help="comma-separated index families "
                           "(default: chime)")
    crun.add_argument("--workloads", default="C", metavar="X,Y",
                      help="comma-separated YCSB letters (default: C)")
    crun.add_argument("--clients", default="", metavar="N,M",
                      help="comma-separated client counts "
                           "(default: the preset's operating point)")
    crun.add_argument("--depth", type=int, default=1, metavar="D",
                      help="pipeline depth pinned per point (default: 1)")
    crun.add_argument("--value-size", type=int, default=8, metavar="B")
    crun.add_argument("--theta", type=float, default=0.99,
                      help="zipf skew for A-style workloads")
    crun.add_argument("--span", type=int, default=None)
    crun.add_argument("--neighborhood", type=int, default=None)
    crun.add_argument("--sync-mode", default="optimistic",
                      choices=SYNC_MODES,
                      help="lock synchronization mode pinned per point "
                           "(default: optimistic)")
    crun.add_argument("--num-mns", type=int, default=1, metavar="M",
                      help="memory nodes pinned per point; > 1 shards "
                           "the key space one sub-tree per MN "
                           "(default: 1)")
    crun.add_argument("--cache-mode", default="shared",
                      choices=("shared", "partitioned"),
                      help="CN cache admission under sharding pinned "
                           "per point (default: shared)")
    crun.add_argument("--placement", default="auto",
                      choices=("cn", "mn", "auto"),
                      help="index placement pinned per point; read by "
                           "placement-aware families such as flexkv "
                           "(default: auto)")
    crun.add_argument("--seeds", type=int, default=3, metavar="N",
                      help="replicates per cell (default: 3)")
    crun.add_argument("--seed-base", type=int, default=None, metavar="S",
                      help="first replicate seed (default: preset seed)")
    crun.add_argument("--num-keys", type=int, default=None,
                      help="override the preset's dataset size")
    crun.add_argument("--ops", type=int, default=None,
                      help="override the preset's ops per client")
    crun.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: $REPRO_JOBS "
                           "or cores-1)")
    crun.add_argument("--limit", type=int, default=None, metavar="K",
                      help="execute at most K missing points this "
                           "invocation (budget valve)")

    cstatus = campaign_sub.add_parser("status",
                                      help="list campaigns and progress")
    _db_arg(cstatus)

    creport = campaign_sub.add_parser(
        "report", help="render the static HTML report + verdict")
    _db_arg(creport)
    creport.add_argument("--id", default="", help="campaign id "
                                                  "(default: the only one)")
    creport.add_argument("--out", default="campaign-report.html",
                         metavar="PATH")
    creport.add_argument("--baseline", default="BENCH_perf.json",
                         metavar="PATH",
                         help="perf baseline to check comparable cells "
                              "against (default: BENCH_perf.json)")
    creport.add_argument("--no-baseline", action="store_true",
                         help="skip the BENCH_perf.json comparison")
    creport.add_argument("--alpha", type=float, default=0.05,
                         help="Mann-Whitney significance level")
    creport.add_argument("--min-drop", type=float, default=0.05,
                         help="relative mean drop below which a cell is "
                              "never flagged")
    creport.add_argument("--baseline-tolerance", type=float, default=0.25,
                         help="allowed relative shortfall vs the perf "
                              "baseline")

    cdiff = campaign_sub.add_parser(
        "diff", help="compare two stored commits cell by cell")
    _db_arg(cdiff)
    cdiff.add_argument("--id", default="", help="campaign id")
    cdiff.add_argument("--base", default="", metavar="COMMIT",
                       help="baseline commit (default: previous stored)")
    cdiff.add_argument("--head", default="", metavar="COMMIT",
                       help="head commit (default: newest stored)")

    args = parser.parse_args(argv)

    from repro.config import unknown_env_vars
    for name in unknown_env_vars():
        print(f"warning: unrecognized environment variable {name} "
              f"(no REPRO_* knob by that name; typo?)", file=sys.stderr)

    if args.command == "list":
        try:
            for name in EXPERIMENTS:
                print(name)
        except BrokenPipeError:  # e.g. `python -m repro list | head`
            pass
        return 0
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
