"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro list
    python -m repro run fig3d
    python -m repro run fig12 --scale quick
    python -m repro run table1 --out results.txt
    python -m repro run all --scale quick

Figure names map to the experiment functions of
:mod:`repro.bench.experiments`; ``--scale`` picks a preset from
:mod:`repro.bench.scale`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.bench import PRESETS, Scale
from repro.bench.report import format_table
from repro.bench import experiments as exp

#: Figure name -> (experiment callable, wants_scale).
EXPERIMENTS: Dict[str, tuple] = {
    "fig3a": (exp.fig3a_tradeoff, True),
    "fig3b": (exp.fig3b_limited_bandwidth, True),
    "fig3c": (exp.fig3c_limited_cache, True),
    "fig3d": (exp.fig3d_hashing, False),
    "fig4": (exp.fig4_micro, True),
    "table1": (exp.table1_rtts, True),
    "fig12": (exp.fig12_ycsb, True),
    "fig13": (exp.fig13_variable_kv, True),
    "fig14": (exp.fig14_cache_consumption, True),
    "fig15": (exp.fig15_factor_analysis, True),
    "fig15b": (exp.fig15b_learned_branch, True),
    "fig16": (exp.fig16_sibling_validation, False),
    "fig17": (exp.fig17_speculative, True),
    "fig18a": (exp.fig18a_skewness, True),
    "fig18b": (exp.fig18b_cache_size, True),
    "fig18c": (exp.fig18c_inline_value_size, True),
    "fig18d": (exp.fig18d_indirect_value_size, True),
    "fig18e": (exp.fig18e_span_size, True),
    "fig18f": (exp.fig18f_neighborhood_size, True),
    "fig19a": (exp.fig19a_span_metrics, True),
    "fig19b": (exp.fig19b_neighborhood_load_factor, False),
    "fig19c": (exp.fig19c_hotspot_buffer, True),
    "ablation-cxl": (exp.ablation_cxl_atomics, True),
    "ablation-rdwc": (exp.ablation_rdwc, True),
    "ablation-locks": (exp.ablation_local_lock_table, True),
    "ablation-torn": (exp.ablation_torn_writes, True),
    "ablation-write-amp": (exp.ablation_write_amplification, True),
}


def run_experiment(name: str, scale: Scale) -> List[dict]:
    func, wants_scale = EXPERIMENTS[name]
    return func(scale) if wants_scale else func()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate CHIME (SOSP '24) evaluation figures on "
                    "the simulated DM cluster.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    run_parser = sub.add_parser("run", help="run one figure (or 'all')")
    run_parser.add_argument("figure", help="figure name or 'all'")
    run_parser.add_argument("--scale", default="quick",
                            choices=sorted(PRESETS),
                            help="scaling preset (default: quick)")
    run_parser.add_argument("--out", default=None,
                            help="also append tables to this file")
    args = parser.parse_args(argv)

    if args.command == "list":
        try:
            for name in EXPERIMENTS:
                print(name)
        except BrokenPipeError:  # e.g. `python -m repro list | head`
            pass
        return 0

    names = list(EXPERIMENTS) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"try 'python -m repro list'", file=sys.stderr)
        return 2
    scale = PRESETS[args.scale]
    for name in names:
        started = time.time()
        rows = run_experiment(name, scale)
        table = format_table(rows, title=f"{name} (scale={scale.name})")
        print(table)
        print(f"[{name}: {time.time() - started:.1f}s]\n")
        if args.out:
            with open(args.out, "a") as sink:
                sink.write(table + "\n\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
