"""Piecewise linear approximation (PLA) models for the ROLEX baseline.

Greedy "shrinking cone" segmentation: scan the sorted keys, keeping the
feasible slope interval that keeps every covered key's predicted position
within ``epsilon`` of its true position; start a new segment when the
cone empties.  This is the standard construction used by learned indexes
(FITing-tree / PGM style) and guarantees ``|predict(k) - pos(k)| <=
epsilon`` for every trained key.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import IndexError_

#: Cached bytes per segment: start key (8) + slope (8) + intercept (8).
SEGMENT_BYTES = 24


@dataclass(frozen=True)
class PlaSegment:
    """One linear segment: position ~= slope * (key - start_key) + base."""

    start_key: int
    slope: float
    base: float

    def predict(self, key: int) -> float:
        return self.slope * (key - self.start_key) + self.base


class PlaModel:
    """A trained PLA model over a sorted key array."""

    def __init__(self, segments: List[PlaSegment], num_keys: int,
                 epsilon: int) -> None:
        if not segments:
            raise IndexError_("PLA model needs at least one segment")
        self.segments = segments
        self.num_keys = num_keys
        self.epsilon = epsilon
        self._starts = [s.start_key for s in segments]

    @classmethod
    def train(cls, keys: Sequence[int], epsilon: int) -> "PlaModel":
        """Greedy shrinking-cone training over sorted unique *keys*."""
        if epsilon < 1:
            raise IndexError_(f"epsilon must be >= 1, got {epsilon}")
        if not keys:
            return cls([PlaSegment(0, 0.0, 0.0)], 0, epsilon)
        segments: List[PlaSegment] = []
        index = 0
        n = len(keys)
        while index < n:
            origin_key = keys[index]
            origin_pos = index
            slope_low, slope_high = 0.0, float("inf")
            cursor = index + 1
            while cursor < n:
                dx = keys[cursor] - origin_key
                dy = cursor - origin_pos
                low = (dy - epsilon) / dx
                high = (dy + epsilon) / dx
                new_low = max(slope_low, low)
                new_high = min(slope_high, high)
                if new_low > new_high:
                    break
                slope_low, slope_high = new_low, new_high
                cursor += 1
            if cursor == index + 1:
                slope = 0.0
            elif slope_high == float("inf"):
                slope = slope_low
            else:
                slope = (slope_low + slope_high) / 2.0
            segments.append(PlaSegment(origin_key, slope, float(origin_pos)))
            index = cursor
        return cls(segments, n, epsilon)

    def segment_for(self, key: int) -> PlaSegment:
        index = bisect.bisect_right(self._starts, key) - 1
        return self.segments[max(index, 0)]

    def predict(self, key: int) -> int:
        """Predicted position, clamped to [0, num_keys - 1]."""
        if self.num_keys == 0:
            return 0
        raw = self.segment_for(key).predict(key)
        return max(0, min(self.num_keys - 1, int(round(raw))))

    def position_range(self, key: int) -> range:
        """The +-epsilon candidate position window for *key*."""
        center = self.predict(key)
        lo = max(0, center - self.epsilon)
        hi = min(max(self.num_keys - 1, 0), center + self.epsilon)
        return range(lo, hi + 1)

    @property
    def cache_bytes(self) -> int:
        return len(self.segments) * SEGMENT_BYTES

    def verify(self, keys: Sequence[int]) -> None:
        """Assert the epsilon guarantee over the training keys (tests)."""
        for position, key in enumerate(keys):
            if abs(self.predict(key) - position) > self.epsilon:
                raise IndexError_(
                    f"PLA error bound violated at key {key}: predicted "
                    f"{self.predict(key)}, actual {position}")
