"""FlexKV-style partitioned KV with dynamic CN-side vs MN-side placement.

FlexKV (PAPERS.md) observes that CN-side index replicas only pay off
while their routing metadata fits the CN memory budget; under pressure
it moves whole partitions to MN-side execution, where the weak MN CPU
walks the structure and the CN pays a single RPC per operation.  This
module lands that design on the access layer of
:mod:`repro.core.access`:

* The structure is a hash-partitioned bucket array.  Each partition
  lives on its home MN (round-robin) as ``buckets x slots`` fixed slots
  of ``[key u64 | value]``; key 0 marks an empty slot.
* **CN placement** (default): operations need the partition's routing
  directory resident in the CN cache — a miss costs one extra directory
  READ before the bucket access and is reported to the placement
  policy.  Bucket accesses are ordinary one-sided verbs (slot claims go
  through CAS), so fault injection, spans, and pipelining behave
  exactly as for the tree families.
* **MN placement**: the whole operation collapses to one RPC
  (``PlanExecutor.offload``) whose service time derives from the
  traversal plan via :class:`repro.sim.resources.OffloadCostModel`; the
  handler runs host-side against the same region bytes the one-sided
  path touches, so both placements see one source of truth.
* The :class:`~repro.core.access.CachePressurePlacement` policy flips a
  partition CN→MN once directory misses accumulate, emitting
  ``placement.switch`` obs events; ``REPRO_PLACEMENT`` forces a static
  ``cn`` or ``mn`` placement instead (``auto`` restores the policy).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.compute import ClientContext
from repro.core.access import (
    PLACEMENT_CN,
    PLACEMENT_MN,
    CachePressurePlacement,
    StaticPlacement,
    family_plans,
)
from repro.errors import IndexError_, SimulationError
from repro.hashing.mph import _mix
from repro.layout import (
    decode_key,
    decode_u64,
    decode_value,
    encode_key,
    encode_value,
)
from repro.memory.region import CACHE_LINE, addr_mn
from repro.obs.spans import SpanInstrumentedOps

__all__ = ["FlexKVClient", "FlexKVConfig", "FlexKVIndex", "PLACEMENT_ENV"]

#: Forces a static placement for every FlexKV partition: ``cn`` or
#: ``mn``; ``auto`` (or unset) runs the cache-pressure policy.
PLACEMENT_ENV = "REPRO_PLACEMENT"


@dataclass(frozen=True)
class FlexKVConfig:
    value_size: int = 8
    #: Hash partitions (placement is decided per partition); default
    #: scales with the memory pool (4 per MN).
    partitions: Optional[int] = None
    slots_per_bucket: int = 4
    #: Bucket-array slots per bulk-loaded item (insert headroom).
    capacity_factor: float = 3.0
    #: Consecutive buckets probed before declaring the table full
    #: (linear probing at bucket granularity absorbs hash skew; probing
    #: stops early at the first bucket with a free slot).
    probe_limit: int = 8
    #: Directory misses on a CN-placed partition before the policy
    #: flips it to MN-side execution.
    switch_threshold: int = 4


def resolve_placement(value: Optional[str] = None) -> str:
    """``cn`` / ``mn`` / ``auto`` from the argument or ``REPRO_PLACEMENT``."""
    if value is None:
        value = os.environ.get(PLACEMENT_ENV, "").strip() or "auto"
    value = value.lower()
    if value not in ("cn", "mn", "auto"):
        raise SimulationError(
            f"{PLACEMENT_ENV} must be cn, mn, or auto: {value!r}"
        )
    return value


class FlexKVIndex:
    """Host-side state: partition homes, bucket arrays, placement policy."""

    access_family = "flexkv"

    def __init__(self, cluster: Cluster,
                 config: Optional[FlexKVConfig] = None,
                 placement: Optional[str] = None) -> None:
        self.cluster = cluster
        self.config = config or FlexKVConfig()
        self.mn_ids: List[int] = sorted(cluster.mns)
        self.partitions = self.config.partitions or 4 * len(self.mn_ids)
        mode = resolve_placement(placement)
        if mode == "auto":
            self.placement = CachePressurePlacement(
                self.partitions, threshold=self.config.switch_threshold
            )
        else:
            self.placement = StaticPlacement(
                PLACEMENT_CN if mode == "cn" else PLACEMENT_MN
            )
        #: Per-partition bucket-array base address and its directory
        #: (routing metadata) address; filled by :meth:`bulk_load`.
        self.part_base: Dict[int, int] = {}
        self.meta_addr: Dict[int, int] = {}
        self.buckets = 0
        self.loaded_items = 0

    def client(self, ctx: ClientContext) -> "FlexKVClient":
        return FlexKVClient(self, ctx)

    @property
    def slot_size(self) -> int:
        return 8 + self.config.value_size

    @property
    def bucket_bytes(self) -> int:
        return self.config.slots_per_bucket * self.slot_size

    @property
    def meta_bytes(self) -> int:
        """CN-resident directory size per partition (8 B per bucket —
        the fingerprint/lease table a CN-side replica must hold)."""
        return 8 * self.buckets

    @property
    def placement_switches(self) -> int:
        return self.placement.switches

    @staticmethod
    def _bucket_count(items_per_partition: int, config: FlexKVConfig) -> int:
        return max(
            8,
            int(items_per_partition * config.capacity_factor)
            // config.slots_per_bucket,
        )

    @classmethod
    def directory_bytes(cls, num_keys: int, num_mns: int,
                        config: Optional[FlexKVConfig] = None) -> int:
        """Total CN-resident directory footprint for a *num_keys* load.

        Computable before any index exists — experiments use it to pick
        cache budgets relative to what a fully CN-placed FlexKV needs.
        """
        config = config or FlexKVConfig()
        partitions = config.partitions or 4 * num_mns
        per_part = max(1, num_keys // partitions)
        return partitions * 8 * cls._bucket_count(per_part, config)

    # -- addressing (CN-local) ----------------------------------------------

    def partition_of(self, key: int) -> int:
        return _mix(key, 0x5157) % self.partitions

    def home_mn(self, partition: int) -> int:
        return self.mn_ids[partition % len(self.mn_ids)]

    def bucket_addr(self, partition: int, key: int, probe: int = 0) -> int:
        bucket = (_mix(key, 0x7C1F) + probe) % self.buckets
        return self.part_base[partition] + bucket * self.bucket_bytes

    # -- bulk load -----------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, int]]) -> None:
        pairs = list(pairs)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise IndexError_("bulk_load requires sorted unique keys")
        if pairs and pairs[0][0] < 1:
            raise IndexError_("keys must be >= 1")
        per_part = max(1, len(pairs) // self.partitions)
        self.buckets = self._bucket_count(per_part, self.config)
        for part in range(self.partitions):
            mn = self.cluster.mns[self.home_mn(part)]
            self.part_base[part] = mn.allocator.alloc(
                self.buckets * self.bucket_bytes, align=CACHE_LINE
            )
            self.meta_addr[part] = mn.allocator.alloc(
                self.meta_bytes, align=CACHE_LINE
            )
        for mn_id in self.mn_ids:
            self.cluster.mns[mn_id].register_rpc("flexkv", self._serve_op)
        for key, value in pairs:
            if not self._host_upsert(key, value):
                raise SimulationError(
                    "flexkv bucket full during bulk load "
                    "(raise FlexKVConfig.capacity_factor)"
                )
        self.loaded_items = len(pairs)

    def _host_write(self, addr: int, data: bytes) -> None:
        self.cluster.mns[addr_mn(addr)].mem_write(addr, data)

    def _host_read(self, addr: int, length: int) -> bytes:
        return self.cluster.mns[addr_mn(addr)].mem_read(addr, length)

    # -- MN-side execution (RPC handler) -------------------------------------

    def _host_slot_of(self, key: int) -> Tuple[Optional[int], Optional[int]]:
        """``(slot_addr_of_key, first_empty_slot_addr)`` along the probe chain.

        Probing stops at the first bucket holding a free slot: with no
        deletions a key is always placed at the first free slot of its
        chain, so nothing can live beyond that bucket.
        """
        partition = self.partition_of(key)
        slot_size = self.slot_size
        for probe in range(self.config.probe_limit):
            bucket_addr = self.bucket_addr(partition, key, probe)
            empty_addr = None
            for i in range(self.config.slots_per_bucket):
                addr = bucket_addr + i * slot_size
                stored = decode_key(self._host_read(addr, 8))
                if stored == key:
                    return addr, None
                if stored == 0 and empty_addr is None:
                    empty_addr = addr
            if empty_addr is not None:
                return None, empty_addr
        return None, None

    def _host_upsert(self, key: int, value: int) -> bool:
        found, empty = self._host_slot_of(key)
        addr = found if found is not None else empty
        if addr is None:
            return False
        self._host_write(
            addr,
            encode_key(key) + encode_value(value, self.config.value_size),
        )
        return True

    def _serve_op(self, request):
        """Serve ``("flexkv", kind, key, value)`` on the home MN's CPU.

        The handler touches the same region bytes the CN-side one-sided
        path does, at a single simulation instant (the RPC's service
        completion), so the two placements never diverge.
        """
        _, kind, key, value = request
        if kind == "search":
            found, _empty = self._host_slot_of(key)
            if found is None:
                return None
            data = self._host_read(found, self.slot_size)
            return decode_value(data, 8, size=self.config.value_size)
        if kind == "insert":
            if not self._host_upsert(key, value):
                raise SimulationError(
                    "flexkv bucket full "
                    "(raise FlexKVConfig.capacity_factor)"
                )
            return True
        if kind == "update":
            found, _empty = self._host_slot_of(key)
            if found is None:
                return False
            self._host_write(
                found + 8, encode_value(value, self.config.value_size)
            )
            return True
        raise SimulationError(f"unknown flexkv op {kind!r}")

    # -- host-side inspection ------------------------------------------------

    def collect_items(self) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        slot_size = self.slot_size
        value_size = self.config.value_size
        for part in range(self.partitions):
            base = self.part_base[part]
            for bucket in range(self.buckets):
                for i in range(self.config.slots_per_bucket):
                    addr = base + bucket * self.bucket_bytes + i * slot_size
                    data = self._host_read(addr, slot_size)
                    key = decode_key(data)
                    if key:
                        out.append(
                            (key, decode_value(data, 8, size=value_size))
                        )
        out.sort()
        return out

    def remote_memory_bytes(self) -> int:
        return sum(mn.allocator.bytes_used for mn in self.cluster.mns.values())


class FlexKVClient(SpanInstrumentedOps):
    """Per-client FlexKV operations under the partition's placement."""

    #: Bucket re-reads after a lost slot-claim CAS before giving up.
    _CLAIM_ATTEMPTS = 4

    def __init__(self, index: FlexKVIndex, ctx: ClientContext) -> None:
        self.index = index
        self.ctx = ctx
        self.qp = ctx.qp
        self.ops = ctx.ops
        self.plans = family_plans("flexkv")
        self.engine = ctx.engine

    # -- the placement decision ----------------------------------------------

    def _ensure_directory(self, partition: int) -> Generator:
        """CN placement needs the partition directory in the CN cache.

        A hit is free (pure CN-local routing); a miss costs one READ of
        the directory head to refresh the replica and is reported to
        the placement policy, which may flip the partition to MN-side.
        """
        index = self.index
        meta_addr = index.meta_addr[partition]
        cache = self.ctx.cache
        if cache.get(meta_addr) is not None:
            index.placement.note_hit(partition)
            return
        # Insert before yielding the refresh READ (MSHR-style): clients
        # of the same CN that miss while the fetch is in flight coalesce
        # onto it instead of each counting a fresh miss — otherwise a
        # cold directory looks like thrashing to the placement policy
        # no matter how roomy the cache is.
        cache.put(meta_addr, ("flexkv-dir", partition), index.meta_bytes)
        index.placement.note_miss(partition, self.engine)
        yield from self.ops.read(meta_addr, 64)

    # -- operations ----------------------------------------------------------

    def search(self, key: int) -> Generator:
        """Point lookup; returns the value or None."""
        result = yield from self._op("search", self._dispatch("search", key))
        return result

    def insert(self, key: int, value: int) -> Generator:
        """Upsert into the key's bucket (CAS slot claim CN-side)."""
        yield from self._op("insert", self._dispatch("insert", key, value))

    def update(self, key: int, value: int) -> Generator:
        """In-place value write; returns True when the key existed."""
        result = yield from self._op(
            "update", self._dispatch("update", key, value)
        )
        return result

    def _dispatch(self, kind: str, key: int, value: int = 0) -> Generator:
        index = self.index
        partition = index.partition_of(key)
        if index.placement.placement_for(partition) == PLACEMENT_MN:
            reply = yield from self.ops.offload(
                index.home_mn(partition),
                ("flexkv", kind, key, value),
                self.plans[kind],
            )
            return reply
        yield from self._ensure_directory(partition)
        if kind == "search":
            result = yield from self._cn_search(partition, key)
        elif kind == "insert":
            result = yield from self._cn_insert(partition, key, value)
        else:
            result = yield from self._cn_update(partition, key, value)
        return result

    # -- CN-side one-sided paths ---------------------------------------------

    def _find(self, data: bytes, key: int) -> Tuple[Optional[int], Optional[int]]:
        """``(offset_of_key, first_empty_offset)`` within bucket bytes."""
        slot_size = self.index.slot_size
        empty = None
        for i in range(self.index.config.slots_per_bucket):
            offset = i * slot_size
            stored = decode_key(data, offset)
            if stored == key:
                return offset, empty
            if stored == 0 and empty is None:
                empty = offset
        return None, empty

    def _locate(self, partition: int, key: int) -> Generator:
        """Walk *key*'s bucket probe chain (one READ per bucket).

        Returns ``(found_addr, empty_addr, value)``: the key's slot
        address and current value when present, otherwise the first
        free slot address where an insert belongs (both None when the
        whole chain is full).
        """
        index = self.index
        for probe in range(index.config.probe_limit):
            bucket_addr = index.bucket_addr(partition, key, probe)
            data = yield from self.ops.read(bucket_addr, index.bucket_bytes)
            offset, empty = self._find(data, key)
            if offset is not None:
                value = decode_value(
                    data, offset + 8, size=index.config.value_size
                )
                return bucket_addr + offset, None, value
            if empty is not None:
                return None, bucket_addr + empty, None
        return None, None, None

    def _cn_search(self, partition: int, key: int) -> Generator:
        found, _empty, value = yield from self._locate(partition, key)
        return value if found is not None else None

    def _cn_update(self, partition: int, key: int, value: int) -> Generator:
        found, _empty, _current = yield from self._locate(partition, key)
        if found is None:
            return False
        yield from self.ops.write(
            found + 8, encode_value(value, self.index.config.value_size)
        )
        return True

    def _cn_insert(self, partition: int, key: int, value: int) -> Generator:
        value_size = self.index.config.value_size
        for _attempt in range(self._CLAIM_ATTEMPTS):
            found, empty, _current = yield from self._locate(partition, key)
            if found is not None:
                yield from self.ops.write(
                    found + 8, encode_value(value, value_size)
                )
                return
            if empty is None:
                raise SimulationError(
                    "flexkv bucket full "
                    "(raise FlexKVConfig.capacity_factor)"
                )
            # CAS operates on the little-endian u64 word at the slot;
            # keys are stored big-endian, so swap in the word whose LE
            # bytes are the key's BE encoding (an empty key field is
            # all-zero bytes, hence expected 0 either way).
            key_word = decode_u64(encode_key(key))
            _old, swapped = yield from self.ops.cas(empty, 0, key_word)
            if swapped:
                yield from self.ops.write(
                    empty + 8, encode_value(value, value_size)
                )
                return
            # Lost the slot race: re-walk the chain and try again.
        raise SimulationError("flexkv slot-claim CAS starved")
