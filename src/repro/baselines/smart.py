"""SMART (OSDI '23): the state-of-the-art radix tree on DM.

Re-implemented from the paper's description as an adaptive radix tree
(ART) whose slots are **8-byte words embedding the partial key**, so a
single RDMA CAS installs or replaces a child atomically — SMART's key to
lock-free writes.  Leaves are individual KV blocks (*KV-discrete*), so
point reads fetch exactly one item (amplification factor 1) but the CN
must cache one pointer-bearing node per handful of keys — the high cache
consumption CHIME's analysis targets (503 MB for 60 M keys in the
paper's Figure 14).

Node types follow ART: Node4 / Node16 / Node48 / Node256, selected
adaptively and upgraded out-of-place (allocate bigger node, copy slots,
CAS the parent slot).  Path compression stores up to 8 prefix bytes per
node.  Readers verify the full key stored in the leaf block; a mismatch
on a cached path invalidates the cached nodes and retries remotely
(optimistic path compression).

RDWC (read delegation / write combining) comes from the shared per-CN
combiner, as the CHIME paper applies it to every index.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.compute import ClientContext
from repro.core.access import family_plans
from repro.core.sync import MAX_RETRIES, backoff_delay
from repro.errors import IndexError_, LayoutError
from repro.layout import decode_key, decode_value, encode_key, encode_value
from repro.memory import ChunkAllocator, NULL_ADDR, addr_mn
from repro.memory.region import CACHE_LINE, addr_offset, make_addr

#: Slot word format: [63]=occupied, [62]=leaf, [59..61]=node type,
#: [56]=seal, [48..55]=partial key byte, [0..47]=compressed address.
#: Global addresses pack the MN id above bit 48, so slots carry a
#: *compressed* form — (mn_id << 40 | offset), mn_id < 256, offset < 1 TB.
_OCCUPIED = 1 << 63
_LEAF = 1 << 62
_TYPE_SHIFT = 59
_TYPE_MASK = 0x7 << _TYPE_SHIFT
_PARTIAL_SHIFT = 48
_PARTIAL_MASK = 0xFF << _PARTIAL_SHIFT
_ADDR_MASK = (1 << 48) - 1
_COMPRESSED_OFFSET_BITS = 40


def _compress_addr(addr: int) -> int:
    mn_id = addr_mn(addr)
    offset = addr_offset(addr)
    if mn_id >= (1 << 8) or offset >= (1 << _COMPRESSED_OFFSET_BITS):
        raise LayoutError(f"address {addr:#x} does not fit in a slot")
    return (mn_id << _COMPRESSED_OFFSET_BITS) | offset


def _expand_addr(compressed: int) -> int:
    mn_id = compressed >> _COMPRESSED_OFFSET_BITS
    offset = compressed & ((1 << _COMPRESSED_OFFSET_BITS) - 1)
    return make_addr(mn_id, offset)

#: Node type codes and their slot counts.
NODE4, NODE16, NODE48, NODE256 = 0, 1, 2, 3
SLOT_COUNTS = {NODE4: 4, NODE16: 16, NODE48: 48, NODE256: 256}
_UPGRADE = {NODE4: NODE16, NODE16: NODE48, NODE48: NODE256}

#: Structural changes (node upgrade / prefix expansion) *seal* every slot
#: of the node being replaced before copying it: a sealed slot makes any
#: concurrent CAS (whose compare value is the unsealed word) fail, so no
#: install can slip into the old node between the copy and the parent
#: re-point.  Occupied slots get SEAL_BIT or'ed in; empty slots become
#: the EMPTY_SEALED sentinel.  Readers ignore sealing (addresses stay
#: valid); writers that observe a seal back off and retry.
SEAL_BIT = 1 << 56
EMPTY_SEALED = _OCCUPIED | SEAL_BIT | _TYPE_MASK

#: Node header: [type:1][depth:1][prefix_len:1][pad:1][prefix:8] + pad.
HEADER_SIZE = 16

_U64 = struct.Struct("<Q")

#: One pre-compiled struct per node type: unpacks the full slot array in
#: a single call (decode_node sits on every pointer chase).
_SLOT_STRUCTS = {node_type: struct.Struct(f"<{count}Q")
                 for node_type, count in SLOT_COUNTS.items()}


def pack_slot(partial: int, addr: int, leaf: bool, node_type: int = 0) -> int:
    word = _OCCUPIED | (partial << _PARTIAL_SHIFT) | _compress_addr(addr)
    if leaf:
        word |= _LEAF
    else:
        word |= (node_type << _TYPE_SHIFT) & _TYPE_MASK
    return word


def unpack_slot(word: int) -> Tuple[bool, int, int, bool, int]:
    """Returns (occupied, partial, global addr, is_leaf, node_type)."""
    occupied = bool(word & _OCCUPIED)
    partial = (word & _PARTIAL_MASK) >> _PARTIAL_SHIFT
    addr = _expand_addr(word & _ADDR_MASK)
    is_leaf = bool(word & _LEAF)
    node_type = (word & _TYPE_MASK) >> _TYPE_SHIFT
    return occupied, partial, addr, is_leaf, node_type


def node_size(node_type: int) -> int:
    return HEADER_SIZE + 8 * SLOT_COUNTS[node_type]


@dataclass
class RadixNode:
    """A parsed (possibly cached) radix node."""

    addr: int
    node_type: int
    depth: int
    prefix: bytes
    slots: List[int]  # raw slot words

    @property
    def size(self) -> int:
        return node_size(self.node_type)

    def slot_index_for(self, partial: int) -> Optional[int]:
        """Index of the slot holding *partial*, or None."""
        if self.node_type == NODE256:
            word = self.slots[partial]
            if word & _OCCUPIED and word != EMPTY_SEALED:
                return partial
            return None
        for index, word in enumerate(self.slots):
            if word & _OCCUPIED and word != EMPTY_SEALED and \
                    (word & _PARTIAL_MASK) >> _PARTIAL_SHIFT == partial:
                return index
        return None

    def free_slot_index(self, partial: int) -> Optional[int]:
        if self.node_type == NODE256:
            return None if self.slots[partial] & _OCCUPIED else partial
        for index, word in enumerate(self.slots):
            if not (word & _OCCUPIED):
                return index
        return None

    def has_seal(self) -> bool:
        return any(word & SEAL_BIT for word in self.slots)

    def occupied_slots(self) -> List[Tuple[int, int]]:
        """(partial, unsealed word) pairs, sorted by partial key byte."""
        out = []
        for word in self.slots:
            if word & _OCCUPIED and word != EMPTY_SEALED:
                out.append(((word & _PARTIAL_MASK) >> _PARTIAL_SHIFT,
                            word & ~SEAL_BIT))
        out.sort()
        return out


def encode_node(node: RadixNode) -> bytes:
    out = bytearray(node.size)
    out[0] = node.node_type
    out[1] = node.depth
    out[2] = len(node.prefix)
    out[4:4 + len(node.prefix)] = node.prefix
    for index, word in enumerate(node.slots):
        _U64.pack_into(out, HEADER_SIZE + 8 * index, word)
    return bytes(out)


def decode_node(addr: int, data: bytes) -> RadixNode:
    node_type = data[0]
    depth = data[1]
    prefix_len = data[2]
    prefix = bytes(data[4:4 + prefix_len])
    slots = list(_SLOT_STRUCTS[node_type].unpack_from(data, HEADER_SIZE))
    return RadixNode(addr, node_type, depth, prefix, slots)


@dataclass(frozen=True)
class SmartConfig:
    key_size: int = 8
    value_size: int = 8
    #: Update leaves out-of-place (SMART-RCU, for variable-length items)
    #: instead of writing the value in place.
    rcu_updates: bool = False


class SmartIndex:
    """Host-side state of one SMART tree."""

    def __init__(self, cluster: Cluster,
                 config: Optional[SmartConfig] = None) -> None:
        self.cluster = cluster
        self.config = config or SmartConfig()
        self.root_addr = NULL_ADDR
        self.root_type = NODE256
        self._host_rr = 0
        self.loaded_items = 0
        self._internal_bytes = 0
        self._internal_count = 0

    def client(self, ctx: ClientContext) -> "SmartClient":
        return SmartClient(self, ctx)

    # -- host helpers ------------------------------------------------------------

    def _host_alloc(self, size: int) -> int:
        mn_ids = sorted(self.cluster.mns)
        mn_id = mn_ids[self._host_rr % len(mn_ids)]
        self._host_rr += 1
        return self.cluster.mns[mn_id].allocator.alloc(size,
                                                       align=CACHE_LINE)

    def _host_write(self, addr: int, data: bytes) -> None:
        self.cluster.mns[addr_mn(addr)].mem_write(addr, data)

    def _host_read(self, addr: int, length: int) -> bytes:
        return self.cluster.mns[addr_mn(addr)].mem_read(addr, length)

    @property
    def leaf_size(self) -> int:
        return 8 + self.config.value_size

    # -- bulk load --------------------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, int]]) -> None:
        pairs = list(pairs)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise IndexError_("bulk_load requires sorted unique keys")
        if pairs and pairs[0][0] < 1:
            raise IndexError_("keys must be >= 1")
        items = [(encode_key(k), k, v) for k, v in pairs]
        root = RadixNode(NULL_ADDR, NODE256, 0, b"",
                         [0] * SLOT_COUNTS[NODE256])
        root.addr = self._host_alloc(node_size(NODE256))
        self._internal_bytes += node_size(NODE256)
        self._internal_count += 1
        groups: Dict[int, list] = {}
        for key_bytes, key, value in items:
            groups.setdefault(key_bytes[0], []).append((key_bytes, key, value))
        for partial, group in groups.items():
            word = self._build(group, depth=1)
            root.slots[partial] = self._with_partial(word, partial)
        self._host_write(root.addr, encode_node(root))
        self.root_addr = root.addr
        self.root_type = NODE256
        self.loaded_items = len(pairs)

    def _with_partial(self, word: int, partial: int) -> int:
        return (word & ~_PARTIAL_MASK) | (partial << _PARTIAL_SHIFT)

    def _build(self, group: list, depth: int) -> int:
        """Build the subtree for keys sharing bytes [0, depth); returns a
        slot word (partial byte unset — the caller sets it)."""
        if len(group) == 1:
            key_bytes, key, value = group[0]
            addr = self._host_alloc(self.leaf_size)
            self._host_write(addr, key_bytes
                             + encode_value(value, self.config.value_size))
            return pack_slot(0, addr, leaf=True)
        # Longest common prefix from `depth`.
        first = group[0][0]
        last = group[-1][0]
        prefix_len = 0
        while depth + prefix_len < 8 and \
                first[depth + prefix_len] == last[depth + prefix_len]:
            prefix_len += 1
        prefix = first[depth:depth + prefix_len]
        branch_depth = depth + prefix_len
        children: Dict[int, list] = {}
        for item in group:
            children.setdefault(item[0][branch_depth], []).append(item)
        node_type = NODE4
        while SLOT_COUNTS[node_type] < len(children):
            node_type = _UPGRADE[node_type]
        slots = [0] * SLOT_COUNTS[node_type]
        node = RadixNode(NULL_ADDR, node_type, depth, prefix, slots)
        for index, (partial, child_group) in enumerate(sorted(children.items())):
            word = self._with_partial(
                self._build(child_group, branch_depth + 1), partial)
            if node_type == NODE256:
                node.slots[partial] = word
            else:
                node.slots[index] = word
        node.addr = self._host_alloc(node.size)
        self._internal_bytes += node.size
        self._internal_count += 1
        self._host_write(node.addr, encode_node(node))
        return pack_slot(0, node.addr, leaf=False, node_type=node_type)

    # -- host-side inspection -------------------------------------------------------------

    def collect_items(self) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []

        def walk(addr: int, node_type: int) -> None:
            node = decode_node(addr, self._host_read(addr,
                                                     node_size(node_type)))
            for _partial, word in node.occupied_slots():
                _occ, _p, child, is_leaf, child_type = unpack_slot(word)
                if is_leaf:
                    data = self._host_read(child, self.leaf_size)
                    out.append((decode_key(data),
                                decode_value(data, 8,
                                             size=self.config.value_size)))
                else:
                    walk(child, child_type)

        if self.root_addr != NULL_ADDR:
            walk(self.root_addr, self.root_type)
        out.sort()
        return out

    def cache_bytes_needed(self) -> int:
        """Bytes to cache every pointer-bearing node (the paper's
        cache-consumption metric for SMART)."""
        total = 0

        def walk(addr: int, node_type: int) -> None:
            nonlocal total
            total += node_size(node_type)
            node = decode_node(addr, self._host_read(addr,
                                                     node_size(node_type)))
            for _partial, word in node.occupied_slots():
                _occ, _p, child, is_leaf, child_type = unpack_slot(word)
                if not is_leaf:
                    walk(child, child_type)

        if self.root_addr != NULL_ADDR:
            walk(self.root_addr, self.root_type)
        return total

    def height(self) -> int:
        def walk(addr: int, node_type: int) -> int:
            node = decode_node(addr, self._host_read(addr,
                                                     node_size(node_type)))
            best = 1
            for _partial, word in node.occupied_slots():
                _occ, _p, child, is_leaf, child_type = unpack_slot(word)
                if not is_leaf:
                    best = max(best, 1 + walk(child, child_type))
            return best

        if self.root_addr == NULL_ADDR:
            return 0
        return walk(self.root_addr, self.root_type)

    def remote_memory_bytes(self) -> int:
        return sum(mn.allocator.bytes_used for mn in self.cluster.mns.values())


class SmartClient:
    """Per-client SMART operations (one-sided, lock-free writes)."""

    def __init__(self, index: SmartIndex, ctx: ClientContext) -> None:
        self.index = index
        self.ctx = ctx
        self.qp = ctx.qp
        self.ops = ctx.ops
        self.plans = family_plans("smart")
        self.engine = ctx.engine
        self.config = index.config
        self._allocators: Dict[int, ChunkAllocator] = {}
        self._alloc_rr = ctx.client_id

    # -------------------------------------------------------------- plumbing

    def _alloc(self, size: int) -> Generator:
        mn_ids = sorted(self.index.cluster.mns)
        mn_id = mn_ids[self._alloc_rr % len(mn_ids)]
        self._alloc_rr += 1
        allocator = self._allocators.get(mn_id)
        if allocator is None:
            allocator = ChunkAllocator(
                self.qp, mn_id,
                chunk_size=self.index.cluster.config.alloc_chunk_bytes)
            self._allocators[mn_id] = allocator
        addr = yield from allocator.alloc(size)
        return addr

    def _read_node(self, addr: int, node_type: int,
                   cacheable: bool = True) -> Generator:
        data = yield from self.ops.read(addr, node_size(node_type))
        node = decode_node(addr, data)
        if cacheable:
            self.ctx.cache.put(addr, node, node.size)
        return node

    def _get_node(self, addr: int, node_type: int,
                  use_cache: bool) -> Generator:
        if use_cache:
            cached = self.ctx.cache.get(addr)
            if cached is not None:
                return cached, True
        node = yield from self._read_node(addr, node_type)
        return node, False

    def _read_leaf(self, addr: int) -> Generator:
        data = yield from self.ops.read(addr, self.index.leaf_size)
        return (decode_key(data),
                decode_value(data, 8, size=self.config.value_size))

    # -------------------------------------------------------------- search

    def search(self, key: int) -> Generator:
        if self.ctx.combiner.enabled:
            result = yield from self.ctx.combiner.read(
                ("smart-s", id(self.index), key), lambda: self._search(key))
            return result
        result = yield from self._search(key)
        return result

    def _search(self, key: int) -> Generator:
        # First pass may use cached nodes; a second pass (after a stale
        # hit) bypasses the cache entirely.
        result = yield from self._search_pass(key, use_cache=True)
        if result is not _STALE:
            return result
        result = yield from self._search_pass(key, use_cache=False)
        assert result is not _STALE
        return result

    def _search_pass(self, key: int, use_cache: bool) -> Generator:
        key_bytes = encode_key(key)
        addr, node_type = self.index.root_addr, self.index.root_type
        depth = 0
        path: List[int] = []
        used_cache = False
        while True:
            node, from_cache = yield from self._get_node(addr, node_type,
                                                         use_cache)
            used_cache = used_cache or from_cache
            path.append(addr)
            depth = node.depth + len(node.prefix)
            if node.prefix and \
                    key_bytes[node.depth:depth] != node.prefix:
                return self._stale_or_none(used_cache, path)
            if depth >= 8:
                return self._stale_or_none(used_cache, path)
            slot = node.slot_index_for(key_bytes[depth])
            if slot is None:
                return self._stale_or_none(used_cache, path)
            word = node.slots[slot]
            _occ, _partial, child, is_leaf, child_type = unpack_slot(word)
            if is_leaf:
                leaf_key, value = yield from self._read_leaf(child)
                if leaf_key != key:
                    return self._stale_or_none(used_cache, path)
                return value
            addr, node_type = child, child_type
            depth += 1

    def _stale_or_none(self, used_cache: bool, path: List[int]):
        """A miss through cached nodes may be stale: invalidate + retry."""
        if used_cache:
            for addr in path:
                self.ctx.cache.invalidate(addr)
            return _STALE
        return None

    # -------------------------------------------------------------- insert / update

    def insert(self, key: int, value: int) -> Generator:
        if key < 1:
            raise IndexError_("keys must be >= 1")
        result = yield from self._upsert(key, value, must_exist=False)
        return result

    def update(self, key: int, value: int) -> Generator:
        if self.ctx.combiner.enabled:
            result = yield from self.ctx.combiner.write(
                ("smart-u", id(self.index), key), value,
                lambda v: self._upsert(key, v, must_exist=True))
            return result
        result = yield from self._upsert(key, value, must_exist=True)
        return result

    def _upsert(self, key: int, value: int, must_exist: bool) -> Generator:
        key_bytes = encode_key(key)
        for attempt in range(MAX_RETRIES):
            outcome = yield from self._upsert_pass(key, key_bytes, value,
                                                   must_exist)
            if outcome is not _RETRY:
                return outcome
            yield self.engine.timeout(backoff_delay(min(attempt, 8)))
        raise IndexError_(f"upsert({key}) did not converge")

    def _upsert_pass(self, key: int, key_bytes: bytes, value: int,
                     must_exist: bool) -> Generator:
        """One descend-and-CAS attempt; _RETRY on any lost race.

        Writes always descend remotely from the root (fresh nodes): a
        cached route could lead to a node that an upgrade/expansion has
        already disconnected, and a CAS into a disconnected node silently
        loses the write.  This is conservative relative to the real SMART
        (whose write path revalidates cached routes); noted in DESIGN.md.
        The descent tracks the parent slot so structural changes (node
        upgrades, prefix expansions) can re-point it without a search.
        """
        addr, node_type = self.index.root_addr, self.index.root_type
        parent_info = None  # (parent_node, slot_index, slot_word)
        while True:
            node = yield from self._read_node(addr, node_type)
            depth = node.depth + len(node.prefix)
            if node.prefix and key_bytes[node.depth:depth] != node.prefix:
                if must_exist:
                    return False
                done = yield from self._expand_prefix(node, parent_info,
                                                      key_bytes, key, value)
                return True if done else _RETRY
            partial = key_bytes[depth]
            slot = node.slot_index_for(partial)
            if slot is None:
                if must_exist:
                    return False
                done = yield from self._install_leaf(node, parent_info,
                                                     partial, key, value)
                return True if done else _RETRY
            word = node.slots[slot]
            _occ, _p, child, is_leaf, child_type = unpack_slot(word)
            if not is_leaf:
                parent_info = (node, slot, word)
                addr, node_type = child, child_type
                continue
            if word & SEAL_BIT:
                return _RETRY  # a structural change is replacing this node
            leaf_key, _old = yield from self._read_leaf(child)
            if leaf_key == key:
                done = yield from self._write_value(node, slot, word, child,
                                                    key, value)
                return True if done else _RETRY
            if must_exist:
                return False
            done = yield from self._split_leaf_edge(node, slot, word, child,
                                                    leaf_key, key, value)
            return True if done else _RETRY

    def _slot_addr(self, node: RadixNode, slot: int) -> int:
        return node.addr + HEADER_SIZE + 8 * slot

    def _write_leaf_block(self, key: int, value: int) -> Generator:
        addr = yield from self._alloc(self.index.leaf_size)
        yield from self.ops.write(
            addr, encode_key(key)
            + encode_value(value, self.config.value_size))
        return addr

    def _install_leaf(self, node: RadixNode, parent_info, partial: int,
                      key: int, value: int) -> Generator:
        """CAS a fresh leaf into a free slot (upgrading a full node)."""
        if node.has_seal():
            return False  # a structural change is replacing this node
        free = node.free_slot_index(partial)
        if free is None:
            done = yield from self._upgrade_node(node, parent_info, partial,
                                                 key, value)
            return done
        leaf_addr = yield from self._write_leaf_block(key, value)
        word = pack_slot(partial, leaf_addr, leaf=True)
        _old, swapped = yield from self.ops.cas(
            self._slot_addr(node, free), 0, word)
        if swapped:
            self.ctx.cache.invalidate(node.addr)
        return swapped

    def _write_value(self, node: RadixNode, slot: int, word: int,
                     leaf_addr: int, key: int, value: int) -> Generator:
        """Update an existing key: in place, or out-of-place (RCU)."""
        if not self.config.rcu_updates:
            yield from self.ops.write(
                leaf_addr + 8, encode_value(value, self.config.value_size))
            return True
        if word & SEAL_BIT:
            return False
        new_leaf = yield from self._write_leaf_block(key, value)
        _occ, partial, _a, _l, _t = unpack_slot(word)
        new_word = pack_slot(partial, new_leaf, leaf=True)
        _old, swapped = yield from self.ops.cas(
            self._slot_addr(node, slot), word, new_word)
        if swapped:
            self.ctx.cache.invalidate(node.addr)
        return swapped

    def _split_leaf_edge(self, node: RadixNode, slot: int, word: int,
                         leaf_addr: int, leaf_key: int, key: int,
                         value: int) -> Generator:
        """Two keys collide on one slot: insert a Node4 at the divergence
        byte holding both leaves, then CAS the slot leaf -> node."""
        if word & SEAL_BIT:
            return False
        existing = encode_key(leaf_key)
        mine = encode_key(key)
        depth = node.depth + len(node.prefix) + 1
        divergence = depth
        while divergence < 8 and existing[divergence] == mine[divergence]:
            divergence += 1
        if divergence >= 8:
            raise IndexError_("duplicate key in split path")
        new_leaf = yield from self._write_leaf_block(key, value)
        slots = [0] * SLOT_COUNTS[NODE4]
        slots[0] = pack_slot(existing[divergence], leaf_addr, leaf=True)
        slots[1] = pack_slot(mine[divergence], new_leaf, leaf=True)
        branch = RadixNode(NULL_ADDR, NODE4, depth,
                           existing[depth:divergence], slots)
        branch.addr = yield from self._alloc(branch.size)
        yield from self.ops.write(branch.addr, encode_node(branch))
        _occ, partial, _a, _l, _t = unpack_slot(word)
        new_word = pack_slot(partial, branch.addr, leaf=False,
                             node_type=NODE4)
        _old, swapped = yield from self.ops.cas(
            self._slot_addr(node, slot), word, new_word)
        if swapped:
            self.ctx.cache.invalidate(node.addr)
        return swapped

    def _seal_node(self, node: RadixNode) -> Generator:
        """Atomically seal every slot of *node*; returns the node as it
        stood once fully sealed (the authoritative copy source)."""
        for index in range(len(node.slots)):
            current = node.slots[index]
            for _try in range(MAX_RETRIES):
                if current & SEAL_BIT:
                    break  # another structural op already sealed this slot
                target = (current | SEAL_BIT) if current & _OCCUPIED \
                    else EMPTY_SEALED
                old, swapped = yield from self.ops.cas(
                    self._slot_addr(node, index), current, target)
                if swapped:
                    break
                current = old  # lost to a concurrent install; retry
            else:
                raise IndexError_("slot sealing did not converge")
        data = yield from self.ops.read(node.addr, node.size)
        return decode_node(node.addr, data)

    def _unseal_node(self, node: RadixNode) -> Generator:
        """Undo sealing after a failed structural change."""
        for index, word in enumerate(node.slots):
            if word == EMPTY_SEALED:
                yield from self.ops.cas(self._slot_addr(node, index),
                                       EMPTY_SEALED, 0)
            elif word & SEAL_BIT:
                yield from self.ops.cas(self._slot_addr(node, index), word,
                                       word & ~SEAL_BIT)

    def _upgrade_node(self, node: RadixNode, parent_info, partial: int,
                      key: int, value: int) -> Generator:
        """Node full: seal it, copy its slots into the next size plus the
        new leaf, then CAS the parent slot to the new node."""
        if node.node_type not in _UPGRADE:
            raise IndexError_("Node256 cannot be full for a new partial")
        if parent_info is None:
            raise IndexError_("the Node256 root is never upgraded")
        parent, parent_slot, parent_word = parent_info
        sealed = yield from self._seal_node(node)
        if sealed.slot_index_for(partial) is not None or \
                sealed.free_slot_index(partial) is not None:
            # The picture changed while sealing (an install landed or a
            # slot was deleted): back off and retry the whole insert.
            yield from self._unseal_node(sealed)
            return False
        new_type = _UPGRADE[node.node_type]
        slots = [0] * SLOT_COUNTS[new_type]
        occupied = sealed.occupied_slots()
        if new_type == NODE256:
            for slot_partial, word in occupied:
                slots[slot_partial] = word
        else:
            for index, (_slot_partial, word) in enumerate(occupied):
                slots[index] = word
        leaf_addr = yield from self._write_leaf_block(key, value)
        leaf_word = pack_slot(partial, leaf_addr, leaf=True)
        if new_type == NODE256:
            slots[partial] = leaf_word
        else:
            slots[len(occupied)] = leaf_word
        bigger = RadixNode(NULL_ADDR, new_type, node.depth, node.prefix,
                           slots)
        bigger.addr = yield from self._alloc(bigger.size)
        yield from self.ops.write(bigger.addr, encode_node(bigger))
        _occ, parent_partial, _a, _l, _t = unpack_slot(parent_word)
        new_parent_word = pack_slot(parent_partial, bigger.addr, leaf=False,
                                    node_type=new_type)
        _old, swapped = yield from self.ops.cas(
            self._slot_addr(parent, parent_slot), parent_word,
            new_parent_word)
        if swapped:
            self.ctx.cache.invalidate(parent.addr)
            self.ctx.cache.invalidate(node.addr)
        else:
            yield from self._unseal_node(sealed)
        return swapped

    def _expand_prefix(self, node: RadixNode, parent_info, key_bytes: bytes,
                       key: int, value: int) -> Generator:
        """The key diverges inside *node*'s compressed prefix: create a
        Node4 branching at the divergence, holding the new leaf and a
        re-prefixed copy of *node*."""
        if parent_info is None:
            raise IndexError_("the root has no prefix to expand")
        parent, parent_slot, parent_word = parent_info
        sealed = yield from self._seal_node(node)
        full_prefix = sealed.prefix
        divergence = 0
        while divergence < len(full_prefix) and \
                key_bytes[node.depth + divergence] == full_prefix[divergence]:
            divergence += 1
        if divergence >= len(full_prefix):
            yield from self._unseal_node(sealed)
            return False  # prefix changed under us: retry
        branch_depth = node.depth + divergence
        # Re-prefixed copy of the old node (out-of-place; old node leaks).
        copy_slots = [0 if w == EMPTY_SEALED else (w & ~SEAL_BIT)
                      for w in sealed.slots]
        copy = RadixNode(NULL_ADDR, sealed.node_type, branch_depth + 1,
                         full_prefix[divergence + 1:], copy_slots)
        copy.addr = yield from self._alloc(copy.size)
        yield from self.ops.write(copy.addr, encode_node(copy))
        leaf_addr = yield from self._write_leaf_block(key, value)
        slots = [0] * SLOT_COUNTS[NODE4]
        slots[0] = pack_slot(full_prefix[divergence], copy.addr, leaf=False,
                             node_type=copy.node_type)
        slots[1] = pack_slot(key_bytes[branch_depth], leaf_addr, leaf=True)
        branch = RadixNode(NULL_ADDR, NODE4, node.depth,
                           full_prefix[:divergence], slots)
        branch.addr = yield from self._alloc(branch.size)
        yield from self.ops.write(branch.addr, encode_node(branch))
        _occ, parent_partial, _a, _l, _t = unpack_slot(parent_word)
        new_parent_word = pack_slot(parent_partial, branch.addr, leaf=False,
                                    node_type=NODE4)
        _old, swapped = yield from self.ops.cas(
            self._slot_addr(parent, parent_slot), parent_word,
            new_parent_word)
        if swapped:
            self.ctx.cache.invalidate(parent.addr)
            self.ctx.cache.invalidate(node.addr)
        else:
            yield from self._unseal_node(sealed)
        return swapped

    # -------------------------------------------------------------- delete

    def delete(self, key: int) -> Generator:
        key_bytes = encode_key(key)
        for attempt in range(MAX_RETRIES):
            addr, node_type = self.index.root_addr, self.index.root_type
            while True:
                node = yield from self._read_node(addr, node_type)
                depth = node.depth + len(node.prefix)
                if node.prefix and key_bytes[node.depth:depth] != node.prefix:
                    return False
                slot = node.slot_index_for(key_bytes[depth])
                if slot is None:
                    return False
                word = node.slots[slot]
                _occ, _p, child, is_leaf, child_type = unpack_slot(word)
                if not is_leaf:
                    addr, node_type = child, child_type
                    continue
                if word & SEAL_BIT:
                    break  # node being replaced: back off and retry
                leaf_key, _value = yield from self._read_leaf(child)
                if leaf_key != key:
                    return False
                _old, swapped = yield from self.ops.cas(
                    self._slot_addr(node, slot), word, 0)
                if swapped:
                    self.ctx.cache.invalidate(node.addr)
                    return True
                break  # lost a race: retry from the root
            yield self.engine.timeout(backoff_delay(attempt))
        raise IndexError_(f"delete({key}) did not converge")

    # -------------------------------------------------------------- scan

    def scan(self, key: int, count: int) -> Generator:
        """Ordered scan via in-order traversal; each item is a dedicated
        leaf READ (batched per node), which is why KV-discrete indexes
        saturate the MN NIC's IOPS on YCSB E (§5.2)."""
        key_bytes = encode_key(key)
        leaf_words: List[int] = []
        yield from self._collect_leaves(self.index.root_addr,
                                        self.index.root_type, key_bytes,
                                        leaf_words, count, tight=True)
        results: List[Tuple[int, int]] = []
        for start in range(0, len(leaf_words), 32):
            batch = leaf_words[start:start + 32]
            requests = [(unpack_slot(w)[2], self.index.leaf_size)
                        for w in batch]
            payloads = yield from self.ops.read_batch(requests)
            for data in payloads:
                item_key = decode_key(data)
                if item_key >= key:
                    results.append((item_key,
                                    decode_value(data, 8,
                                                 size=self.config.value_size)))
        results.sort()
        return results[:count]

    def _collect_leaves(self, addr: int, node_type: int, key_bytes: bytes,
                        out: List[int], count: int, tight: bool) -> Generator:
        """DFS in key order, collecting leaf slot words for keys >= the
        start key.

        *tight* means the path so far equals the start key's prefix, so
        this subtree straddles the start key: children below the key's
        byte are pruned, the equal child stays tight, larger children
        relax.  Once not tight, every key under the subtree qualifies.
        """
        if len(out) >= count + 8:
            return
        node, _from_cache = yield from self._get_node(addr, node_type,
                                                      use_cache=True)
        depth = node.depth + len(node.prefix)
        if tight and node.prefix:
            window = key_bytes[node.depth:depth]
            if node.prefix > window:
                tight = False           # whole subtree above the start key
            elif node.prefix < window:
                return                  # whole subtree below the start key
        for partial, word in node.occupied_slots():
            if len(out) >= count + 8:
                return
            _occ, _p, child, is_leaf, child_type = unpack_slot(word)
            child_tight = tight
            if tight and depth < 8:
                if partial < key_bytes[depth]:
                    continue            # strictly below the start key
                child_tight = partial == key_bytes[depth]
            if is_leaf:
                out.append(word)
            else:
                yield from self._collect_leaves(child, child_type, key_bytes,
                                                out, count, child_tight)


_RETRY = object()
_STALE = object()
