"""Marlin (ICPP '23): a concurrent, write-optimized B+ tree on DM for
variable-length values.

Modelled as the paper describes it relative to Sherman: values live in
indirect blocks (an 8-byte pointer per leaf entry), and clients may
update *different entries of the same leaf concurrently* — an update
CASes the entry's value pointer instead of taking the node lock, which
is why Marlin shows the lowest update tail latency in the CHIME paper's
Figure 13 (YCSB A).  Structural operations (insert/split/delete) still
use the node lock via the inherited Sherman machinery.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.baselines.sherman import ShermanClient, ShermanConfig, ShermanIndex
from repro.cluster.cluster import Cluster
from repro.cluster.compute import ClientContext
from repro.core.btree_base import TraversalError
from repro.core.sync import MAX_RETRIES, backoff_delay
from repro.layout.versions import raw_of


class MarlinIndex(ShermanIndex):
    """Host-side state of a Marlin tree (Sherman + indirect values)."""

    def __init__(self, cluster: Cluster,
                 config: Optional[ShermanConfig] = None) -> None:
        base = config or ShermanConfig()
        if not base.indirect_values:
            base = ShermanConfig(span=base.span, key_size=base.key_size,
                                 value_size=base.value_size,
                                 indirect_values=True,
                                 bulk_load_factor=base.bulk_load_factor)
        super().__init__(cluster, base)

    def client(self, ctx: ClientContext) -> "MarlinClient":
        return MarlinClient(self, ctx)


class MarlinClient(ShermanClient):
    """Sherman client with lock-free (CAS-based) value-pointer updates."""

    def _update(self, key: int, value: int) -> Generator:
        """Out-of-place update: write a fresh value block, then CAS the
        8-byte value pointer inside the leaf entry.

        No node lock is taken, so updates to distinct entries of one leaf
        proceed concurrently; a CAS failure (concurrent update of the
        *same* entry, or the entry moved) retries from traversal.
        """
        layout = self.layout
        for attempt in range(MAX_RETRIES):
            ref = yield from self._locate_leaf(key)
            leaf_addr, view = yield from self._leaf_for(ref, key)
            if view is None:
                continue
            index = view.find(key)
            if index is None:
                return False
            _k, old_block = view.entry(index)
            pointer_logical = (layout.entry_offset(index) + 1
                               + layout.key_size)
            raw_start = raw_of(pointer_logical)
            if raw_of(pointer_logical + 7) != raw_start + 7:
                # The pointer straddles a cache-line version byte in the
                # striped image, so an 8-byte CAS cannot address it
                # contiguously; fall back to the locked update path
                # (real Marlin pads entries so pointers stay aligned).
                result = yield from super()._update(key, value)
                return result
            new_block = yield from self._write_block(key, value)
            _old, swapped = yield from self.qp.cas(leaf_addr + raw_start,
                                                   old_block, new_block)
            if swapped:
                return True
            self.qp.stats.retries += 1
            yield self.engine.timeout(backoff_delay(attempt))
        raise TraversalError(f"update({key}) did not converge")
