"""Sherman (SIGMOD '22): the state-of-the-art B+ tree on DM.

Re-implemented from its paper's description, with the enhancement the
CHIME authors apply for fairness (§5.1): the original bookend versioning
is replaced by **two-level cache-line versions** (the same scheme CHIME
uses, shared via :mod:`repro.layout.versions`).

Structure: a B-link tree whose leaves are *sorted arrays* of KV entries.
Reads fetch the **entire leaf node** — the defining read amplification of
KV-contiguous indexes that CHIME attacks.  Updates are fine-grained
(entry write + EV bump, combined with the unlocking WRITE); inserts shift
the sorted array and therefore rewrite the node (a node write with NV
bump).  Sherman's CN-local lock table is modelled through
:class:`~repro.cluster.compute.ComputeNode.local_lock`, shared by every
index here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.compute import ClientContext
from repro.core.btree_base import (
    BTreeClientBase,
    BTreeIndexBase,
    LeafRef,
    MAX_CHASE,
    TraversalError,
)
from repro.core.sync import MAX_RETRIES, backoff_delay
from repro.errors import IndexError_, TornReadError
from repro.layout import (
    MAX_KEY,
    StripedSpan,
    decode_key,
    decode_u16,
    decode_u64,
    decode_value,
    encode_key,
    encode_u16,
    encode_u64,
    encode_value,
    pack_version,
    unpack_version,
)
from repro.layout import versions
from repro.layout.versions import LINE, bump_nibble, raw_size
from repro.memory import NULL_ADDR
from repro.memory.region import CACHE_LINE


@dataclass(frozen=True)
class ShermanConfig:
    """Sherman parameters (paper default: span 64, 8 B keys/values)."""

    span: int = 64
    key_size: int = 8
    value_size: int = 8
    #: Store an 8-byte pointer per entry with the value in an indirect
    #: block (the Marlin baseline layers on this).
    indirect_values: bool = False
    #: Target leaf fill fraction for bulk loading.
    bulk_load_factor: float = 0.7


class ShermanLeafLayout:
    """Sorted-array leaf: header + entries, striped with versions.

    Header: ``[version:1][valid:1][count:2][fence_low:k][fence_high:k]
    [sibling:8]``; entry: ``[version:1][key:k][value:v]``.
    """

    OFF_VERSION = 0
    OFF_VALID = 1
    OFF_COUNT = 2

    def __init__(self, span: int, key_size: int, value_size: int) -> None:
        self.span = span
        self.key_size = key_size
        self.value_size = value_size
        # Sizes and field offsets are all functions of the constructor
        # arguments; precompute them once — they sit on every leaf access.
        self.header_size = 1 + 1 + 2 + 2 * key_size + 8
        self.entry_size = 1 + key_size + value_size
        self.logical_size = self.header_size + span * self.entry_size
        self.raw_size = raw_size(self.logical_size)
        padded = -(-self.raw_size // CACHE_LINE) * CACHE_LINE
        self.total_size = padded + CACHE_LINE
        self.lock_offset = self.total_size - CACHE_LINE
        self.off_fence_low = 4
        self.off_fence_high = 4 + key_size
        self.off_sibling = 4 + 2 * key_size
        # Logical offset of every entry's leading version byte — the
        # consistency check reads all of them on every leaf fetch — and
        # the matching raw offsets for full-image (base 0) views, which
        # let the check scan the buffer without extracting the payload.
        self.entry_version_offsets = tuple(
            self.header_size + index * self.entry_size
            for index in range(span))
        self.entry_version_raw_offsets = tuple(
            versions.raw_of(off) for off in self.entry_version_offsets)

    def entry_offset(self, index: int) -> int:
        return self.header_size + index * self.entry_size


class ShermanLeafView:
    """Accessor over a Sherman leaf image."""

    def __init__(self, layout: ShermanLeafLayout, span: StripedSpan) -> None:
        self.layout = layout
        self.span = span

    @classmethod
    def compose(cls, layout: ShermanLeafLayout,
                items: Sequence[Tuple[int, int]], sibling: int,
                fence_low: int, fence_high: int, nv: int) -> "ShermanLeafView":
        view = cls(layout, StripedSpan.blank(layout.logical_size))
        sp = view.span
        sp.set_all_versions(nv, 0)
        byte = pack_version(nv, 0)
        sp.write_logical(layout.OFF_VERSION, bytes([byte]))
        sp.write_logical(layout.OFF_VALID, b"\x01")
        sp.write_logical(layout.OFF_COUNT, encode_u16(len(items)))
        sp.write_logical(layout.off_fence_low, encode_key(fence_low))
        sp.write_logical(layout.off_fence_high, encode_key(fence_high))
        sp.write_logical(layout.off_sibling, encode_u64(sibling))
        for index in range(layout.span):
            off = layout.entry_offset(index)
            sp.write_logical(off, bytes([byte]))
            if index < len(items):
                key, value = items[index]
                sp.write_logical(off + 1, encode_key(key))
                sp.write_logical(off + 1 + layout.key_size,
                                 encode_value(value, layout.value_size))
        return view

    # -- field access ---------------------------------------------------------

    @property
    def count(self) -> int:
        return decode_u16(self.span.read_logical(self.layout.OFF_COUNT, 2))

    @property
    def fence_low(self) -> int:
        return decode_key(self.span.read_logical(self.layout.off_fence_low,
                                                 self.layout.key_size))

    @property
    def fence_high(self) -> int:
        return decode_key(self.span.read_logical(self.layout.off_fence_high,
                                                 self.layout.key_size))

    @property
    def sibling(self) -> int:
        return decode_u64(self.span.read_logical(self.layout.off_sibling, 8))

    @property
    def nv(self) -> int:
        byte = self.span.read_logical(self.layout.OFF_VERSION, 1)[0]
        return unpack_version(byte)[0]

    def entry(self, index: int) -> Tuple[int, int]:
        off = self.layout.entry_offset(index)
        data = self.span.read_logical(off + 1,
                                      self.layout.key_size
                                      + self.layout.value_size)
        return (decode_key(data),
                decode_value(data, self.layout.key_size,
                             size=self.layout.value_size))

    def items(self) -> List[Tuple[int, int]]:
        layout = self.layout
        payload = self.span.read_logical(0, layout.logical_size)
        count = decode_u16(payload, layout.OFF_COUNT)
        header = layout.header_size
        entry = layout.entry_size
        key_size = layout.key_size
        value_size = layout.value_size
        return [(decode_key(payload, header + i * entry + 1),
                 decode_value(payload, header + i * entry + 1 + key_size,
                              size=value_size))
                for i in range(count)]

    def write_entry_value(self, index: int, key: int, value: int) -> None:
        """Fine-grained entry update: payload + EV bump in lockstep."""
        layout = self.layout
        off = layout.entry_offset(index)
        byte = self.span.read_logical(off, 1)[0]
        nv, ev = unpack_version(byte)
        self.span.write_logical(off, bytes([pack_version(nv,
                                                         bump_nibble(ev))]))
        self.span.bump_entry_versions(off, layout.entry_size)
        self.span.write_logical(off + 1, encode_key(key))
        self.span.write_logical(off + 1 + layout.key_size,
                                encode_value(value, layout.value_size))

    def entry_sub_span(self, index: int) -> Tuple[int, bytes]:
        return self.span.sub_span(self.layout.entry_offset(index),
                                  self.layout.entry_size)

    def entry_key(self, index: int) -> int:
        """Just the key of one entry — skips the value decode."""
        return decode_key(self.span.read_logical(
            self.layout.entry_offset(index) + 1, self.layout.key_size))

    def find(self, key: int) -> Optional[int]:
        """Binary search the sorted entries; returns the index or None."""
        lo, hi = 0, self.count - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            mid_key = self.entry_key(mid)
            if mid_key == key:
                return mid
            if mid_key < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def nv_values(self) -> List[int]:
        # Sherman views always wrap a full-node image (whole-leaf reads),
        # so one bulk payload extraction replaces span+1 tiny reads.
        layout = self.layout
        payload = self.span.read_logical(0, layout.logical_size)
        values = self.span.nv_nibbles()
        values.append((payload[layout.OFF_VERSION] >> 4) & 0xF)
        values.extend([(payload[off] >> 4) & 0xF
                       for off in layout.entry_version_offsets])
        return values

    def is_consistent(self) -> bool:
        span = self.span
        if span.base != 0:
            return len(set(self.nv_values())) <= 1
        # Full-image fast path: scan NV nibbles straight off the raw
        # buffer — no payload extraction, no intermediate lists.  Runs
        # once per fetched leaf, over every line and entry version byte.
        data = span.data
        first = data[0] >> 4
        for pos in range(LINE, len(data), LINE):
            if data[pos] >> 4 != first:
                return False
        if data[1] >> 4 != first:  # header version byte (raw offset 1)
            return False
        for pos in self.layout.entry_version_raw_offsets:
            if data[pos] >> 4 != first:
                return False
        return True


class ShermanIndex(BTreeIndexBase):
    """Host-side state of a Sherman tree."""

    access_family = "sherman"

    def __init__(self, cluster: Cluster,
                 config: Optional[ShermanConfig] = None) -> None:
        self.config = config or ShermanConfig()
        super().__init__(cluster, self.config.span, self.config.key_size)
        entry_value = 8 if self.config.indirect_values \
            else self.config.value_size
        self.leaf_layout = ShermanLeafLayout(self.config.span,
                                             self.config.key_size,
                                             entry_value)
        self.loaded_items = 0

    def client(self, ctx: ClientContext) -> "ShermanClient":
        return ShermanClient(self, ctx)

    # -- bulk load ----------------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, int]]) -> None:
        config = self.config
        layout = self.leaf_layout
        pairs = list(pairs)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise IndexError_("bulk_load requires sorted unique keys")
        if pairs and pairs[0][0] < 1:
            raise IndexError_("keys must be >= 1")
        per_leaf = max(1, int(config.span * config.bulk_load_factor))
        chunks = [pairs[i:i + per_leaf]
                  for i in range(0, len(pairs), per_leaf)] or [[]]
        addrs = [self._host_alloc(layout.total_size) for _ in chunks]
        bounds = [0] + [c[0][0] for c in chunks[1:]] + [MAX_KEY]
        level1 = []
        for index, chunk in enumerate(chunks):
            stored = []
            for key, value in chunk:
                if config.indirect_values:
                    stored.append((key, self._host_alloc_block(key, value)))
                else:
                    stored.append((key, value))
            sibling = addrs[index + 1] if index + 1 < len(addrs) else NULL_ADDR
            view = ShermanLeafView.compose(layout, stored, sibling,
                                           bounds[index], bounds[index + 1],
                                           nv=0)
            self._host_write(addrs[index], bytes(view.span.data))
            level1.append((bounds[index], addrs[index]))
        self.loaded_items = len(pairs)
        self._build_internal_levels(level1)

    def _host_alloc_block(self, key: int, value: int) -> int:
        size = 8 + self.config.value_size
        addr = self._host_alloc(size)
        self._host_write(addr, encode_key(key)
                         + encode_value(value, self.config.value_size))
        return addr

    def _build_internal_levels(self, entries: List[Tuple[int, int]]) -> None:
        from repro.core.nodes import InternalNodeView
        layout = self.internal_layout
        level = 1
        while True:
            groups = [entries[i:i + layout.span]
                      for i in range(0, len(entries), layout.span)]
            addrs = [self._host_alloc(layout.total_size) for _ in groups]
            bounds = [0] + [g[0][0] for g in groups[1:]] + [MAX_KEY]
            next_entries = []
            for index, group in enumerate(groups):
                sibling = addrs[index + 1] if index + 1 < len(addrs) \
                    else NULL_ADDR
                view = InternalNodeView.compose(
                    layout, level, bounds[index], bounds[index + 1],
                    sibling, group, nv=0)
                self._host_write(addrs[index], bytes(view.span.data))
                next_entries.append((bounds[index], addrs[index]))
            if len(groups) == 1:
                self._set_root(addrs[0], level)
                return
            entries = next_entries
            level += 1

    # -- host-side inspection --------------------------------------------------------

    def collect_items(self) -> List[Tuple[int, int]]:
        layout = self.leaf_layout
        out: List[Tuple[int, int]] = []
        for addr in self.leaf_addrs():
            raw = self._host_read(addr, layout.raw_size)
            view = ShermanLeafView(layout, StripedSpan(raw, 0))
            for key, value in view.items():
                if self.config.indirect_values:
                    data = self._host_read(value, 8 + self.config.value_size)
                    value = decode_value(data, 8,
                                         size=self.config.value_size)
                out.append((key, value))
        out.sort()
        return out

    def remote_memory_bytes(self) -> int:
        return sum(mn.allocator.bytes_used for mn in self.cluster.mns.values())


class ShermanClient(BTreeClientBase):
    """Per-client Sherman operations."""

    def __init__(self, index: ShermanIndex, ctx: ClientContext) -> None:
        super().__init__(index, ctx)
        self.sherman = index
        self.config = index.config
        self.layout = index.leaf_layout

    # -------------------------------------------------------------- public API

    def search(self, key: int) -> Generator:
        if self.ctx.combiner.enabled:
            result = yield from self.ctx.combiner.read(
                ("sherman-s", id(self.sherman), key), lambda: self._search(key))
            return result
        result = yield from self._search(key)
        return result

    def insert(self, key: int, value: int) -> Generator:
        if key < 1:
            raise IndexError_("keys must be >= 1")
        result = yield from self._insert(key, value)
        return result

    def update(self, key: int, value: int) -> Generator:
        if self.ctx.combiner.enabled:
            result = yield from self.ctx.combiner.write(
                ("sherman-u", id(self.sherman), key), value,
                lambda v: self._update(key, v))
            return result
        result = yield from self._update(key, value)
        return result

    def delete(self, key: int) -> Generator:
        """Clear by rewriting the leaf without the key (no merges)."""
        result = yield from self._delete(key)
        return result

    def scan(self, key: int, count: int) -> Generator:
        result = yield from self._scan(key, count)
        return result

    # -------------------------------------------------------------- leaf IO

    def _read_leaf(self, addr: int) -> Generator:
        layout = self.layout
        for attempt in range(MAX_RETRIES):
            raw = yield from self.ops.read(addr, layout.raw_size)
            view = ShermanLeafView(layout, StripedSpan(raw, 0))
            if view.is_consistent():
                return view
            self.ops.stats.retries += 1
            yield self.engine.timeout(backoff_delay(attempt))
        raise TornReadError(f"leaf {addr:#x} never consistent")

    def _leaf_for(self, ref: LeafRef, key: int) -> Generator:
        """Fetch the leaf, applying cache and half-split validation."""
        leaf_addr = ref.leaf_addr
        from_cache = ref.from_cache
        for _hop in range(MAX_CHASE):
            view = yield from self._read_leaf(leaf_addr)
            if view.fence_low <= key < view.fence_high:
                return leaf_addr, view
            if key < view.fence_low:
                if from_cache and ref.parent is not None:
                    self.ctx.cache.invalidate(ref.parent.addr)
                return None, None  # stale route: retraverse
            if view.sibling == NULL_ADDR:
                return leaf_addr, view
            if from_cache and ref.parent is not None:
                self.ctx.cache.invalidate(ref.parent.addr)
            leaf_addr = view.sibling
            from_cache = False
        raise TraversalError("leaf sibling chase exceeded bound")

    # -------------------------------------------------------------- search

    def _search(self, key: int) -> Generator:
        for attempt in range(MAX_RETRIES):
            ref = yield from self._locate_leaf(key)
            leaf_addr, view = yield from self._leaf_for(ref, key)
            if view is None:
                continue
            index = view.find(key)
            if index is None:
                return None
            _k, value = view.entry(index)
            if self.config.indirect_values:
                value = yield from self._read_block(value, key)
            return value
        raise TraversalError(f"search({key}) did not converge")

    def _read_block(self, block_addr: int, key: int) -> Generator:
        data = yield from self.ops.read(block_addr, 8 + self.config.value_size)
        if decode_key(data) != key:
            raise TornReadError("indirect block key mismatch")
        return decode_value(data, 8, size=self.config.value_size)

    # -------------------------------------------------------------- update / delete

    def _update(self, key: int, value: int) -> Generator:
        for attempt in range(MAX_RETRIES):
            ref = yield from self._locate_leaf(key)
            lock_addr = ref.leaf_addr + self.layout.lock_offset
            yield from self._lock(lock_addr, zero_rest=False)
            try:
                leaf_addr, view = yield from self._leaf_for(ref, key)
                if view is None or leaf_addr != ref.leaf_addr:
                    # Routed elsewhere while locking this node: release
                    # and retry from the top (rare).
                    yield from self.ops.write(lock_addr, encode_u64(0))
                    continue
                index = view.find(key)
                if index is None:
                    yield from self.ops.write(lock_addr, encode_u64(0))
                    return False
                stored = value
                if self.config.indirect_values:
                    stored = yield from self._write_block(key, value)
                view.write_entry_value(index, key, stored)
                raw_off, raw_bytes = view.entry_sub_span(index)
                yield from self.ops.write_batch([
                    (leaf_addr + raw_off, raw_bytes),
                    (lock_addr, encode_u64(0)),
                ])
                return True
            finally:
                self._release_local(lock_addr)
        raise TraversalError(f"update({key}) did not converge")

    def _write_block(self, key: int, value: int) -> Generator:
        addr = yield from self._alloc(8 + self.config.value_size)
        yield from self.ops.write(addr, encode_key(key)
                                 + encode_value(value,
                                                self.config.value_size))
        return addr

    def _delete(self, key: int) -> Generator:
        result = yield from self._modify_sorted(key, None)
        return result

    # -------------------------------------------------------------- insert

    def _insert(self, key: int, value: int) -> Generator:
        result = yield from self._modify_sorted(key, value)
        return result

    def _modify_sorted(self, key: int, value: Optional[int]) -> Generator:
        """Insert (value given) or delete (value None) in the sorted leaf;
        both rewrite the node under its lock."""
        layout = self.layout
        for attempt in range(MAX_RETRIES):
            ref = yield from self._locate_leaf(key)
            lock_addr = ref.leaf_addr + layout.lock_offset
            yield from self._lock(lock_addr, zero_rest=False)
            released = False
            try:
                leaf_addr, view = yield from self._leaf_for(ref, key)
                if view is None or leaf_addr != ref.leaf_addr:
                    yield from self.ops.write(lock_addr, encode_u64(0))
                    released = True
                    continue
                items = view.items()
                index = view.find(key)
                if value is None:
                    if index is None:
                        yield from self.ops.write(lock_addr, encode_u64(0))
                        released = True
                        return False
                    items.pop(index)
                else:
                    stored = value
                    if self.config.indirect_values:
                        stored = yield from self._write_block(key, value)
                    if index is not None:
                        items[index] = (key, stored)
                    else:
                        items.append((key, stored))
                        items.sort()
                if len(items) > layout.span:
                    yield from self._split_sherman_leaf(ref, leaf_addr,
                                                        lock_addr, view,
                                                        items)
                    released = True
                    continue  # retry the insert after the split
                new_view = ShermanLeafView.compose(
                    layout, items, view.sibling, view.fence_low,
                    view.fence_high, nv=bump_nibble(view.nv))
                yield from self.ops.write_batch([
                    (leaf_addr, bytes(new_view.span.data)),
                    (lock_addr, encode_u64(0)),
                ])
                released = True
                return True
            except BaseException:
                if not released:
                    yield from self.ops.write(lock_addr, encode_u64(0))
                raise
            finally:
                self._release_local(lock_addr)
        raise TraversalError(f"modify({key}) did not converge")

    def _split_sherman_leaf(self, ref: LeafRef, leaf_addr: int,
                            lock_addr: int, view: ShermanLeafView,
                            items: List[Tuple[int, int]]) -> Generator:
        layout = self.layout
        mid = len(items) // 2
        pivot = items[mid][0]
        left_items = items[:mid]
        right_items = items[mid:]
        new_addr = yield from self._alloc(layout.total_size)
        right_view = ShermanLeafView.compose(
            layout, right_items, view.sibling, pivot, view.fence_high, nv=0)
        yield from self.ops.write_batch([
            (new_addr, bytes(right_view.span.data)),
            (new_addr + layout.lock_offset, encode_u64(0)),
        ])
        left_view = ShermanLeafView.compose(
            layout, left_items, new_addr, view.fence_low, pivot,
            nv=bump_nibble(view.nv))
        yield from self.ops.write_batch([
            (leaf_addr, bytes(left_view.span.data)),
            (lock_addr, encode_u64(0)),
        ])
        parent_hint = ref.parent if ref.parent is not None else None
        yield from self._propagate_split(parent_hint, 1, leaf_addr, pivot,
                                         new_addr)

    # -------------------------------------------------------------- scan

    def _scan(self, key: int, count: int) -> Generator:
        layout = self.layout
        ref = yield from self._locate_leaf(key)
        candidates = [ref.leaf_addr]
        if ref.parent is not None:
            candidates.extend(
                ref.parent.children[ref.parent_index + 1:ref.parent.count])
        per_leaf = max(1, int(layout.span * 0.5))
        needed = min(len(candidates), count // per_leaf + 2)
        requests = [(addr, layout.raw_size) for addr in candidates[:needed]]
        payloads = yield from self.ops.read_batch(requests)
        results: List[Tuple[int, int]] = []
        last_view = None
        for addr, data in zip(candidates[:needed], payloads):
            view = ShermanLeafView(layout, StripedSpan(data, 0))
            if not view.is_consistent():
                view = yield from self._read_leaf(addr)
            last_view = view
            results.extend((k, v) for k, v in view.items() if k >= key)
        results.sort()
        next_addr = last_view.sibling if last_view is not None else NULL_ADDR
        guard = 0
        while len(results) < count and next_addr != NULL_ADDR and guard < 1024:
            guard += 1
            view = yield from self._read_leaf(next_addr)
            results.extend((k, v) for k, v in view.items() if k >= key)
            results.sort()
            next_addr = view.sibling
        results = results[:count]
        if self.config.indirect_values:
            resolved = []
            for item_key, block in results:
                value = yield from self._read_block(block, item_key)
                resolved.append((item_key, value))
            return resolved
        return results
