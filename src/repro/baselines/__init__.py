"""Baseline DM range indexes the paper compares CHIME against."""

from repro.baselines.flexkv import FlexKVClient, FlexKVConfig, FlexKVIndex
from repro.baselines.marlin import MarlinClient, MarlinIndex
from repro.baselines.outback import OutbackClient, OutbackConfig, OutbackIndex
from repro.baselines.pla import PlaModel, PlaSegment
from repro.baselines.rolex import RolexClient, RolexConfig, RolexIndex
from repro.baselines.sherman import (
    ShermanClient,
    ShermanConfig,
    ShermanIndex,
    ShermanLeafLayout,
    ShermanLeafView,
)
from repro.baselines.smart import (
    SmartClient,
    SmartConfig,
    SmartIndex,
)

__all__ = [
    "FlexKVClient",
    "FlexKVConfig",
    "FlexKVIndex",
    "MarlinClient",
    "MarlinIndex",
    "OutbackClient",
    "OutbackConfig",
    "OutbackIndex",
    "PlaModel",
    "PlaSegment",
    "RolexClient",
    "RolexConfig",
    "RolexIndex",
    "ShermanClient",
    "ShermanConfig",
    "ShermanIndex",
    "ShermanLeafLayout",
    "ShermanLeafView",
    "SmartClient",
    "SmartConfig",
    "SmartIndex",
]
