"""ROLEX (FAST '23): the state-of-the-art learned index on DM.

Machine-learning models (PLA segments, :mod:`repro.baselines.pla`) live
on each CN as the "cache": they map a key to a predicted position, whose
±error window covers up to two span-16 *leaf tables* that are fetched
per lookup — the 2× read amplification the CHIME paper measures (§3.1.1,
§5.2).  Leaf tables reuse Sherman's sorted-array layout, with the sibling
pointer repurposed as a **synonym pointer**: keys that do not fit their
predicted leaf go to chained synonym tables (insertion with bias and
data-movement constraints keep the model valid without retraining).

Following the paper's methodology (§5.1 footnote 3), models are
pre-trained on all keys — bulk loading accepts ``future_keys`` so
workloads with inserts (YCSB D) have model coverage and reserved slots,
and ROLEX is excluded from the 100 %-insert LOAD workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.baselines.pla import PlaModel
from repro.baselines.sherman import ShermanLeafLayout, ShermanLeafView
from repro.cluster.cluster import Cluster
from repro.cluster.compute import ClientContext
from repro.core.sync import MAX_RETRIES, backoff_delay
from repro.errors import IndexError_, TornReadError
from repro.layout import (
    MAX_KEY,
    StripedSpan,
    decode_key,
    decode_value,
    encode_key,
    encode_u64,
    encode_value,
)
from repro.layout.versions import bump_nibble
from repro.memory import ChunkAllocator, NULL_ADDR, addr_mn
from repro.memory.region import CACHE_LINE

#: Cached bytes per leaf-table address entry.
LEAF_ADDR_BYTES = 8


@dataclass(frozen=True)
class RolexConfig:
    """ROLEX parameters (paper defaults: span 16, model error 16)."""

    span: int = 16
    error: int = 16
    key_size: int = 8
    value_size: int = 8
    indirect_values: bool = False
    #: Reserved slack per leaf for pre-trained future inserts.
    bulk_load_factor: float = 0.75


class RolexIndex:
    """Host-side state of one ROLEX index."""

    def __init__(self, cluster: Cluster,
                 config: Optional[RolexConfig] = None) -> None:
        self.cluster = cluster
        self.config = config or RolexConfig()
        entry_value = 8 if self.config.indirect_values \
            else self.config.value_size
        self.leaf_layout = ShermanLeafLayout(self.config.span,
                                             self.config.key_size,
                                             entry_value)
        self.model: Optional[PlaModel] = None
        self.leaf_addrs: List[int] = []
        self._host_rr = 0
        self.loaded_items = 0

    def client(self, ctx: ClientContext) -> "RolexClient":
        return RolexClient(self, ctx)

    # -- host helpers --------------------------------------------------------------

    def _host_alloc(self, size: int) -> int:
        mn_ids = sorted(self.cluster.mns)
        mn_id = mn_ids[self._host_rr % len(mn_ids)]
        self._host_rr += 1
        return self.cluster.mns[mn_id].allocator.alloc(size,
                                                       align=CACHE_LINE)

    def _host_write(self, addr: int, data: bytes) -> None:
        self.cluster.mns[addr_mn(addr)].mem_write(addr, data)

    def _host_read(self, addr: int, length: int) -> bytes:
        return self.cluster.mns[addr_mn(addr)].mem_read(addr, length)

    # -- bulk load -------------------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, int]],
                  future_keys: Sequence[int] = ()) -> None:
        """Load *pairs* and pre-train the model on their keys plus
        *future_keys* (keys that workloads will insert later)."""
        config = self.config
        layout = self.leaf_layout
        pairs = list(pairs)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise IndexError_("bulk_load requires sorted unique keys")
        if pairs and pairs[0][0] < 1:
            raise IndexError_("keys must be >= 1")
        loaded = {k for k, _ in pairs}
        all_keys = sorted(loaded | set(future_keys))
        self.model = PlaModel.train(all_keys, config.error)
        per_leaf = max(1, int(config.span * config.bulk_load_factor))
        # Partition the *trained* key space so predicted positions align
        # with leaves; loaded pairs land in their partition, future keys
        # reserve slack.
        key_chunks = [all_keys[i:i + per_leaf]
                      for i in range(0, len(all_keys), per_leaf)] or [[]]
        loaded_values = dict(pairs)
        self.leaf_addrs = [self._host_alloc(layout.total_size)
                           for _ in key_chunks]
        bounds = [0] + [c[0] for c in key_chunks[1:]] + [MAX_KEY]
        for index, chunk in enumerate(key_chunks):
            items = []
            for key in chunk:
                if key in loaded_values:
                    value = loaded_values[key]
                    if config.indirect_values:
                        value = self._host_alloc_block(key, value)
                    items.append((key, value))
            view = ShermanLeafView.compose(
                layout, items, NULL_ADDR, bounds[index], bounds[index + 1],
                nv=0)
            self._host_write(self.leaf_addrs[index],
                             bytes(view.span.data))
        self.loaded_items = len(pairs)
        self._items_per_leaf = per_leaf

    def _host_alloc_block(self, key: int, value: int) -> int:
        size = 8 + self.config.value_size
        addr = self._host_alloc(size)
        self._host_write(addr, encode_key(key)
                         + encode_value(value, self.config.value_size))
        return addr

    # -- prediction ---------------------------------------------------------------------

    def candidate_leaves(self, key: int) -> List[int]:
        """Leaf indices covering the model's +-error window for *key*."""
        window = self.model.position_range(key)
        lo = window.start // self._items_per_leaf
        hi = (window.stop - 1) // self._items_per_leaf
        hi = min(hi, len(self.leaf_addrs) - 1)
        return list(range(lo, hi + 1))

    def cache_bytes_needed(self) -> int:
        """CN-side cache: model segments + the leaf address table."""
        model_bytes = self.model.cache_bytes if self.model else 0
        return model_bytes + LEAF_ADDR_BYTES * len(self.leaf_addrs)

    # -- host-side inspection --------------------------------------------------------------

    def collect_items(self) -> List[Tuple[int, int]]:
        layout = self.leaf_layout
        out: List[Tuple[int, int]] = []
        for addr in self.leaf_addrs:
            chain = addr
            while chain != NULL_ADDR:
                raw = self._host_read(chain, layout.raw_size)
                view = ShermanLeafView(layout, StripedSpan(raw, 0))
                for key, value in view.items():
                    if self.config.indirect_values:
                        data = self._host_read(value,
                                               8 + self.config.value_size)
                        value = decode_value(data, 8,
                                             size=self.config.value_size)
                    out.append((key, value))
                chain = view.sibling  # synonym pointer
        out.sort()
        return out

    def remote_memory_bytes(self) -> int:
        return sum(mn.allocator.bytes_used for mn in self.cluster.mns.values())

    def synonym_chain_lengths(self) -> List[int]:
        """Chain length per leaf (diagnostics for insert behaviour)."""
        layout = self.leaf_layout
        lengths = []
        for addr in self.leaf_addrs:
            length = 0
            chain = addr
            while chain != NULL_ADDR:
                raw = self._host_read(chain, layout.raw_size)
                chain = ShermanLeafView(layout, StripedSpan(raw, 0)).sibling
                length += 1
            lengths.append(length)
        return lengths


class RolexClient:
    """Per-client ROLEX operations."""

    def __init__(self, index: RolexIndex, ctx: ClientContext) -> None:
        self.index = index
        self.ctx = ctx
        self.qp = ctx.qp
        self.engine = ctx.engine
        self.config = index.config
        self.layout = index.leaf_layout
        self._allocators: Dict[int, ChunkAllocator] = {}
        self._alloc_rr = ctx.client_id

    # -------------------------------------------------------------- plumbing

    def _alloc(self, size: int) -> Generator:
        mn_ids = sorted(self.index.cluster.mns)
        mn_id = mn_ids[self._alloc_rr % len(mn_ids)]
        self._alloc_rr += 1
        allocator = self._allocators.get(mn_id)
        if allocator is None:
            allocator = ChunkAllocator(
                self.qp, mn_id,
                chunk_size=self.index.cluster.config.alloc_chunk_bytes)
            self._allocators[mn_id] = allocator
        addr = yield from allocator.alloc(size)
        return addr

    def _read_leaf_batch(self, addrs: Sequence[int]) -> Generator:
        """Batched whole-leaf READs with per-leaf consistency retries."""
        layout = self.layout
        requests = [(addr, layout.raw_size) for addr in addrs]
        payloads = yield from self.qp.read_batch(requests)
        views = []
        for addr, data in zip(addrs, payloads):
            view = ShermanLeafView(layout, StripedSpan(data, 0))
            for attempt in range(MAX_RETRIES):
                if view.is_consistent():
                    break
                self.qp.stats.retries += 1
                yield self.engine.timeout(backoff_delay(attempt))
                data = yield from self.qp.read(addr, layout.raw_size)
                view = ShermanLeafView(layout, StripedSpan(data, 0))
            views.append(view)
        return views

    def _read_leaf(self, addr: int) -> Generator:
        views = yield from self._read_leaf_batch([addr])
        return views[0]

    def _locate(self, key: int) -> Generator:
        """Fetch the model's candidate leaves; returns (leaf_index, views)
        where leaf_index is the candidate whose fences cover *key*."""
        candidates = self.index.candidate_leaves(key)
        addrs = [self.index.leaf_addrs[i] for i in candidates]
        views = yield from self._read_leaf_batch(addrs)
        for leaf_index, view in zip(candidates, views):
            if view.fence_low <= key < view.fence_high:
                return leaf_index, view
        # The window missed (only possible for untrained keys): fall back
        # to widening around the prediction.
        return None, None

    # -------------------------------------------------------------- search

    def search(self, key: int) -> Generator:
        if self.ctx.combiner.enabled:
            result = yield from self.ctx.combiner.read(
                ("rolex-s", id(self.index), key), lambda: self._search(key))
            return result
        result = yield from self._search(key)
        return result

    def _search(self, key: int) -> Generator:
        leaf_index, view = yield from self._locate(key)
        if view is None:
            return None
        while True:
            position = view.find(key)
            if position is not None:
                _k, value = view.entry(position)
                if self.config.indirect_values:
                    value = yield from self._read_block(value, key)
                return value
            synonym = view.sibling
            if synonym == NULL_ADDR:
                return None
            view = yield from self._read_leaf(synonym)

    def _read_block(self, block_addr: int, key: int) -> Generator:
        data = yield from self.qp.read(block_addr, 8 + self.config.value_size)
        if decode_key(data) != key:
            raise TornReadError("indirect block key mismatch")
        return decode_value(data, 8, size=self.config.value_size)

    # -------------------------------------------------------------- writes

    def insert(self, key: int, value: int) -> Generator:
        if key < 1:
            raise IndexError_("keys must be >= 1")
        result = yield from self._modify(key, value, delete=False,
                                         upsert=True)
        return result

    def update(self, key: int, value: int) -> Generator:
        if self.ctx.combiner.enabled:
            result = yield from self.ctx.combiner.write(
                ("rolex-u", id(self.index), key), value,
                lambda v: self._modify(key, v, delete=False, upsert=False))
            return result
        result = yield from self._modify(key, value, delete=False,
                                         upsert=False)
        return result

    def delete(self, key: int) -> Generator:
        result = yield from self._modify(key, 0, delete=True, upsert=False)
        return result

    def _modify(self, key: int, value: int, delete: bool,
                upsert: bool) -> Generator:
        """Locked write on the leaf group covering *key*.

        The base leaf's lock covers its whole synonym chain.
        """
        layout = self.layout
        leaf_index, _view = yield from self._locate(key)
        if leaf_index is None:
            return False
        base_addr = self.index.leaf_addrs[leaf_index]
        lock_addr = base_addr + layout.lock_offset
        local = self.ctx.cn.local_lock(lock_addr)
        if local is not None:
            yield local.acquire()
        try:
            for attempt in range(MAX_RETRIES):
                _old, swapped = yield from self.qp.masked_cas(
                    lock_addr, compare=0, swap=1, compare_mask=1,
                    swap_mask=1)
                if swapped:
                    break
                self.qp.stats.retries += 1
                yield self.engine.timeout(backoff_delay(attempt))
            else:
                raise IndexError_("leaf lock not acquired")
            try:
                result = yield from self._modify_locked(
                    base_addr, lock_addr, key, value, delete, upsert)
                return result
            except BaseException:
                yield from self.qp.write(lock_addr, encode_u64(0))
                raise
        finally:
            if local is not None:
                local.release()

    def _modify_locked(self, base_addr: int, lock_addr: int, key: int,
                       value: int, delete: bool, upsert: bool) -> Generator:
        """Owns the base-leaf lock; every path releases it."""
        layout = self.layout
        # Walk the chain: find the key, or the first table with space.
        chain_addr = base_addr
        spacious: Optional[Tuple[int, ShermanLeafView]] = None
        tail_addr = base_addr
        tail_view = None
        while chain_addr != NULL_ADDR:
            view = yield from self._read_leaf(chain_addr)
            position = view.find(key)
            if position is not None:
                if delete:
                    items = view.items()
                    items.pop(position)
                    result = yield from self._rewrite_table(
                        chain_addr, lock_addr, view, items)
                    return result
                stored = value
                if self.config.indirect_values:
                    stored = yield from self._write_block(key, value)
                view.write_entry_value(position, key, stored)
                raw_off, raw_bytes = view.entry_sub_span(position)
                yield from self.qp.write_batch([
                    (chain_addr + raw_off, raw_bytes),
                    (lock_addr, encode_u64(0)),
                ])
                return True
            if spacious is None and view.count < layout.span:
                spacious = (chain_addr, view)
            tail_addr, tail_view = chain_addr, view
            chain_addr = view.sibling
        if delete or not upsert:
            yield from self.qp.write(lock_addr, encode_u64(0))
            return False
        stored = value
        if self.config.indirect_values:
            stored = yield from self._write_block(key, value)
        if spacious is not None:
            table_addr, view = spacious
            items = view.items()
            items.append((key, stored))
            items.sort()
            result = yield from self._rewrite_table(table_addr, lock_addr,
                                                    view, items)
            return result
        # Whole group full: append a synonym table at the chain tail.
        new_addr = yield from self._alloc(layout.total_size)
        new_view = ShermanLeafView.compose(
            layout, [(key, stored)], NULL_ADDR, tail_view.fence_low,
            tail_view.fence_high, nv=0)
        yield from self.qp.write_batch([
            (new_addr, bytes(new_view.span.data)),
            (new_addr + layout.lock_offset, encode_u64(0)),
        ])
        # Publish: tail.sibling -> new table, then unlock (ordered batch).
        tail_items = tail_view.items()
        rewritten = ShermanLeafView.compose(
            layout, tail_items, new_addr, tail_view.fence_low,
            tail_view.fence_high, nv=bump_nibble(tail_view.nv))
        yield from self.qp.write_batch([
            (tail_addr, bytes(rewritten.span.data)),
            (lock_addr, encode_u64(0)),
        ])
        return True

    def _rewrite_table(self, table_addr: int, lock_addr: int,
                       view: ShermanLeafView,
                       items: List[Tuple[int, int]]) -> Generator:
        layout = self.layout
        new_view = ShermanLeafView.compose(
            layout, items, view.sibling, view.fence_low, view.fence_high,
            nv=bump_nibble(view.nv))
        yield from self.qp.write_batch([
            (table_addr, bytes(new_view.span.data)),
            (lock_addr, encode_u64(0)),
        ])
        return True

    def _write_block(self, key: int, value: int) -> Generator:
        addr = yield from self._alloc(8 + self.config.value_size)
        yield from self.qp.write(addr, encode_key(key)
                                 + encode_value(value,
                                                self.config.value_size))
        return addr

    # -------------------------------------------------------------- scan

    def scan(self, key: int, count: int) -> Generator:
        """Read consecutive leaf tables (plus synonym chains) in key
        order; ROLEX's small span makes this its best workload (§5.2)."""
        leaf_index, first_view = yield from self._locate(key)
        if first_view is None:
            return []
        results: List[Tuple[int, int]] = []
        per_leaf = max(1, self.index._items_per_leaf)
        cursor = leaf_index
        views = [first_view]
        pending = [first_view.sibling] if first_view.sibling != NULL_ADDR \
            else []
        while True:
            for view in views:
                results.extend((k, v) for k, v in view.items() if k >= key)
            if pending:
                views = yield from self._read_leaf_batch(pending)
                pending = [v.sibling for v in views
                           if v.sibling != NULL_ADDR]
                continue
            if len(results) >= count or cursor + 1 >= len(self.index.leaf_addrs):
                break
            take = max(1, (count - len(results)) // per_leaf + 1)
            nxt = self.index.leaf_addrs[cursor + 1:cursor + 1 + take]
            cursor += len(nxt)
            views = yield from self._read_leaf_batch(nxt)
            pending = [v.sibling for v in views if v.sibling != NULL_ADDR]
        results.sort()
        results = results[:count]
        if self.config.indirect_values:
            resolved = []
            for item_key, block in results:
                value = yield from self._read_block(block, item_key)
                resolved.append((item_key, value))
            return resolved
        return results
