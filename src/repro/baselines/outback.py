"""Outback-style hash-routed KV: one-RTT point lookups via CN-side MPH.

Outback (PAPERS.md) replaces CN-side structure traversal with a compact
minimal-perfect-hash table kept on the compute side: every bulk-loaded
key maps to a distinct slot of a value array striped across the memory
nodes, so a point lookup computes its target address locally (the
``hash`` placement of :mod:`repro.core.access`) and issues exactly one
READ.  Keys outside the MPH domain — inserted after the bulk load —
live in MN-resident overflow buckets: new-key inserts go through an
RPC to the bucket's home MN (the weak CPU places the entry), and
readers fall back to a one-sided bucket READ after a failed slot
verify.  There is no range structure at all, so scans are unsupported;
that is the cost of the one-RTT economy.

Slot layout: ``[key u64 | value]``; key 0 marks an empty overflow slot
(bulk-load keys are required to be >= 1, as in SMART).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.compute import ClientContext
from repro.core.access import family_plans
from repro.errors import IndexError_, SimulationError
from repro.hashing.hopscotch import default_hash
from repro.hashing.mph import MinimalPerfectHash
from repro.layout import decode_key, decode_value, encode_key, encode_value
from repro.memory.region import CACHE_LINE
from repro.obs.spans import SpanInstrumentedOps

__all__ = ["OutbackClient", "OutbackConfig", "OutbackIndex"]


@dataclass(frozen=True)
class OutbackConfig:
    value_size: int = 8
    #: Salt for the MPH construction (all CNs build the same table).
    mph_seed: int = 17
    #: Slots per MN-resident overflow bucket.
    overflow_slots: int = 4
    #: Overflow capacity as a fraction of the bulk-loaded key count.
    overflow_headroom: float = 0.5


class OutbackIndex:
    """Host-side state: the MPH routing table and the slot-array layout."""

    access_family = "outback"

    def __init__(self, cluster: Cluster,
                 config: Optional[OutbackConfig] = None) -> None:
        self.cluster = cluster
        self.config = config or OutbackConfig()
        self.mph: Optional[MinimalPerfectHash] = None
        self.mn_ids: List[int] = sorted(cluster.mns)
        #: Per-MN base address of this MN's stripe of the slot array.
        self.slot_base: Dict[int, int] = {}
        #: Per-MN overflow bucket array base and bucket count.
        self.overflow_base: Dict[int, int] = {}
        self.overflow_buckets = 0
        self.loaded_items = 0

    def client(self, ctx: ClientContext) -> "OutbackClient":
        return OutbackClient(self, ctx)

    @property
    def slot_size(self) -> int:
        return 8 + self.config.value_size

    @property
    def bucket_bytes(self) -> int:
        return self.config.overflow_slots * self.slot_size

    @property
    def routing_bytes(self) -> int:
        """CN-resident routing metadata (the one-RTT enabler)."""
        return self.mph.routing_bytes if self.mph is not None else 0

    # -- addressing (CN-local: this is the hash placement) -------------------

    def slot_addr(self, slot: int) -> int:
        """Slot *slot* of the MPH value array, striped across MNs."""
        num_mns = len(self.mn_ids)
        mn_id = self.mn_ids[slot % num_mns]
        return self.slot_base[mn_id] + (slot // num_mns) * self.slot_size

    def overflow_home(self, key: int) -> int:
        return self.mn_ids[default_hash(key, len(self.mn_ids))]

    def overflow_addr(self, key: int) -> Tuple[int, int]:
        """``(mn_id, bucket_addr)`` of *key*'s overflow bucket."""
        mn_id = self.overflow_home(key)
        bucket = default_hash(key * 31 + 7, self.overflow_buckets)
        return mn_id, self.overflow_base[mn_id] + bucket * self.bucket_bytes

    # -- bulk load -----------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, int]]) -> None:
        pairs = list(pairs)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise IndexError_("bulk_load requires sorted unique keys")
        if pairs and pairs[0][0] < 1:
            raise IndexError_("keys must be >= 1")
        keys = [k for k, _ in pairs]
        self.mph = MinimalPerfectHash(keys, seed=self.config.mph_seed)
        num_mns = len(self.mn_ids)
        per_mn = (len(pairs) + num_mns - 1) // num_mns
        headroom = int(len(pairs) * self.config.overflow_headroom)
        self.overflow_buckets = max(
            16, headroom // max(1, self.config.overflow_slots * num_mns)
        )
        for mn_id in self.mn_ids:
            mn = self.cluster.mns[mn_id]
            self.slot_base[mn_id] = mn.allocator.alloc(
                max(1, per_mn) * self.slot_size, align=CACHE_LINE
            )
            self.overflow_base[mn_id] = mn.allocator.alloc(
                self.overflow_buckets * self.bucket_bytes, align=CACHE_LINE
            )
            mn.register_rpc("outback_insert", self._serve_overflow_insert)
        value_size = self.config.value_size
        for slot_index, (key, value) in (
            (self.mph.slot_of(key), (key, value)) for key, value in pairs
        ):
            addr = self.slot_addr(slot_index)
            self._host_write(
                addr, encode_key(key) + encode_value(value, value_size)
            )
        self.loaded_items = len(pairs)

    def _host_write(self, addr: int, data: bytes) -> None:
        from repro.memory.region import addr_mn

        self.cluster.mns[addr_mn(addr)].mem_write(addr, data)

    def _host_read(self, addr: int, length: int) -> bytes:
        from repro.memory.region import addr_mn

        return self.cluster.mns[addr_mn(addr)].mem_read(addr, length)

    # -- MN-side overflow insert (RPC handler) -------------------------------

    def _serve_overflow_insert(self, request) -> bool:
        """Place ``("outback_insert", key, value)`` into its bucket.

        Runs host-side on the bucket's home MN while the RPC verb
        charges the weak CPU; upsert semantics (re-inserting an existing
        overflow key overwrites its value in place).
        """
        _, key, value = request
        _mn_id, bucket_addr = self.overflow_addr(key)
        slot_size = self.slot_size
        value_size = self.config.value_size
        empty_at = -1
        for i in range(self.config.overflow_slots):
            addr = bucket_addr + i * slot_size
            stored = decode_key(self._host_read(addr, 8))
            if stored == key:
                empty_at = i
                break
            if stored == 0 and empty_at < 0:
                empty_at = i
        if empty_at < 0:
            raise SimulationError(
                f"outback overflow bucket full at {bucket_addr:#x} "
                f"(raise OutbackConfig.overflow_headroom)"
            )
        self._host_write(
            bucket_addr + empty_at * slot_size,
            encode_key(key) + encode_value(value, value_size),
        )
        return True

    # -- host-side inspection ------------------------------------------------

    def collect_items(self) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        if self.mph is None:
            return out
        value_size = self.config.value_size
        for slot in range(len(self.mph)):
            data = self._host_read(self.slot_addr(slot), self.slot_size)
            key = decode_key(data)
            if key:
                out.append((key, decode_value(data, 8, size=value_size)))
        for mn_id in self.mn_ids:
            base = self.overflow_base[mn_id]
            for bucket in range(self.overflow_buckets):
                for i in range(self.config.overflow_slots):
                    addr = base + bucket * self.bucket_bytes \
                        + i * self.slot_size
                    data = self._host_read(addr, self.slot_size)
                    key = decode_key(data)
                    if key:
                        out.append(
                            (key, decode_value(data, 8, size=value_size))
                        )
        out.sort()
        return out

    def remote_memory_bytes(self) -> int:
        return sum(mn.allocator.bytes_used for mn in self.cluster.mns.values())


class OutbackClient(SpanInstrumentedOps):
    """Per-client Outback operations (hash placement: MPH, then one verb)."""

    def __init__(self, index: OutbackIndex, ctx: ClientContext) -> None:
        self.index = index
        self.ctx = ctx
        self.qp = ctx.qp
        self.ops = ctx.ops
        self.plans = family_plans("outback")
        self.engine = ctx.engine

    # -- point lookups (the one-RTT fast path) -------------------------------

    def search(self, key: int) -> Generator:
        """Point lookup; returns the value or None."""
        result = yield from self._op("search", self._search(key))
        return result

    def _search(self, key: int) -> Generator:
        index = self.index
        slot_data = yield from self.ops.read(
            index.slot_addr(index.mph.slot_of(key)), index.slot_size
        )
        if decode_key(slot_data) == key:
            return decode_value(slot_data, 8, size=index.config.value_size)
        found = yield from self._overflow_probe(key)
        return found[1] if found is not None else None

    def _overflow_probe(self, key: int) -> Generator:
        """Find *key* in its overflow bucket; ``(slot_addr, value)`` or None."""
        index = self.index
        _mn_id, bucket_addr = index.overflow_addr(key)
        bucket = yield from self.ops.read(bucket_addr, index.bucket_bytes)
        slot_size = index.slot_size
        for i in range(index.config.overflow_slots):
            offset = i * slot_size
            if decode_key(bucket, offset) == key:
                value = decode_value(
                    bucket, offset + 8, size=index.config.value_size
                )
                return bucket_addr + offset, value
        return None

    # -- writes --------------------------------------------------------------

    def insert(self, key: int, value: int) -> Generator:
        """Upsert: in-place for MPH-domain keys, RPC for new keys."""
        yield from self._op("insert", self._insert(key, value))

    def _insert(self, key: int, value: int) -> Generator:
        index = self.index
        slot_addr = index.slot_addr(index.mph.slot_of(key))
        slot_data = yield from self.ops.read(slot_addr, index.slot_size)
        if decode_key(slot_data) == key:
            yield from self.ops.write(slot_addr, self._encode(key, value))
            return
        # Not an MPH-domain key: the home MN places it in its overflow
        # bucket (cross-client visible through one-sided bucket reads).
        yield from self.ops.rpc(
            index.overflow_home(key), ("outback_insert", key, value)
        )

    def update(self, key: int, value: int) -> Generator:
        """Read-verify-write; returns True when the key existed."""
        result = yield from self._op("update", self._update(key, value))
        return result

    def _update(self, key: int, value: int) -> Generator:
        index = self.index
        slot_addr = index.slot_addr(index.mph.slot_of(key))
        slot_data = yield from self.ops.read(slot_addr, index.slot_size)
        if decode_key(slot_data) == key:
            yield from self.ops.write(slot_addr, self._encode(key, value))
            return True
        found = yield from self._overflow_probe(key)
        if found is None:
            return False
        yield from self.ops.write(found[0], self._encode(key, value))
        return True

    def _encode(self, key: int, value: int) -> bytes:
        return encode_key(key) + encode_value(
            value, self.index.config.value_size
        )
