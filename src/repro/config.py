"""Top-level configuration dataclasses.

Defaults mirror the paper's setup (§5.1) with byte budgets scaled for
simulated datasets: the paper runs 60 M keys with a 100 MB cache and a
30 MB hotspot buffer per CN; experiments here scale those budgets by
``dataset_size / 60e6`` so cache pressure is comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional

from repro.rdma.nic import NicSpec
from repro.retry import RetryPolicy

#: The paper's dataset size; used as the budget-scaling reference.
PAPER_DATASET_SIZE = 60_000_000

#: Every ``REPRO_*`` environment knob any layer resolves.  Modules that
#: define a knob keep their own ``*_ENV`` constant next to the consuming
#: code; this central list exists so the CLI can warn about typos
#: (``REPRO_DETPH=4`` silently doing nothing) at startup.  Keep it in
#: sync when adding a knob — ``tests/test_access.py`` cross-checks the
#: constants it can import.
KNOWN_ENV_VARS = frozenset(
    {
        "REPRO_CACHE_MODE",      # bench.scale: CN cache admission mode
        "REPRO_CAMPAIGN_DB",     # xpmt.record: campaign store path
        "REPRO_CAMPAIGN_ID",     # xpmt.record: campaign id override
        "REPRO_COMMIT",          # xpmt.spec: commit hash override
        "REPRO_DEPTH",           # sched: op coroutines per client
        "REPRO_JOBS",            # bench.parallel: sweep worker count
        "REPRO_NUM_MNS",         # bench.scale: memory node count
        "REPRO_PARTITIONS",      # bench.partition: partition processes
        "REPRO_PARTITION_WINDOW",  # bench.partition: lookahead factor
        "REPRO_PLACEMENT",       # baselines.flexkv: cn / mn / auto
        "REPRO_REBALANCE",       # bench.scale: hot-shard rebalancer
        "REPRO_SCALE",           # bench.scale: preset name
        "REPRO_SEED",            # bench.scale: RNG seed override
        "REPRO_SHARDS",          # bench.scale: key-space shard count
        "REPRO_SIM_QUEUE",       # sim.engine: event queue implementation
        "REPRO_SYNC_MODE",       # bench.scale: lock synchronization mode
    }
)


def unknown_env_vars(environ: Optional[Mapping[str, str]] = None) -> List[str]:
    """``REPRO_*`` names present in *environ* but known to no layer.

    The CLI warns about these at startup; a typoed knob otherwise
    silently falls back to its default.
    """
    if environ is None:
        import os

        environ = os.environ
    return sorted(
        key
        for key in environ
        if key.startswith("REPRO_") and key not in KNOWN_ENV_VARS
    )

#: The paper's per-CN cache budget (100 MB) and hotspot buffer (30 MB).
PAPER_CACHE_BYTES = 100 * 1024 * 1024
PAPER_HOTSPOT_BYTES = 30 * 1024 * 1024


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and resource envelope of the simulated DM cluster."""

    num_cns: int = 1
    num_mns: int = 1
    clients_per_cn: int = 16
    #: Per-CN index cache budget in bytes (None = unlimited, as SMART-Opt).
    cache_bytes: Optional[int] = 1 << 20
    #: Per-MN DRAM region size in bytes.
    region_bytes: int = 1 << 26
    #: Per-client allocation chunk (the paper uses 16 MB on 64 GB MNs;
    #: scaled down with the region so many clients fit).
    alloc_chunk_bytes: int = 1 << 18
    mn_nic: NicSpec = field(default_factory=NicSpec)
    #: None disables CN-side NIC modelling (MN NICs are the bottleneck in
    #: every paper experiment: 640 clients against one MN).
    cn_nic: Optional[NicSpec] = None
    #: Model torn (cache-line-granular) WRITE application.
    torn_writes: bool = True
    #: Enable read-delegation / write-combining on each CN.
    rdwc: bool = True
    #: Serialize same-node lock attempts through a CN-local lock table
    #: (Sherman's optimization, adopted by all indexes for fairness).
    local_lock_table: bool = True
    #: Lease-based node locks: the lock line carries an
    #: (owner, epoch, expiry) lease word acquired by read + full-word CAS,
    #: and survivors steal leases orphaned by a crashed CN past their
    #: expiry (see DESIGN.md "Failure model & recovery").
    lock_leases: bool = False
    #: Lease validity window in simulated seconds.  Must comfortably
    #: exceed the longest lock hold time (including a leaf split), or
    #: live holders raise :class:`~repro.errors.LockLeaseExpiredError`.
    lease_duration: float = 200e-6
    #: Lock synchronization mode: ``optimistic`` (the historical masked-
    #: CAS spin, default), ``pessimistic`` (CIDER-style FIFO ticket queue
    #: acquired with one FAA, with CN-local delegation handoff), or
    #: ``adaptive`` (per-leaf auto-switch on a decaying CAS-failure-rate
    #: estimator; see :mod:`repro.core.adaptive`).
    sync_mode: str = "optimistic"
    #: Outstanding op coroutines ("lanes") per client — DEX-style
    #: coroutine depth.  1 (the default) is the historical strictly
    #: serial client loop, event-for-event; higher depths overlap that
    #: many ops per client on its queue pair (see :mod:`repro.sched`).
    pipeline_depth: int = 1
    #: Key-space shards (see :mod:`repro.cluster.shards`).  0 (the
    #: default) keeps the historical single-pool behavior: one index
    #: tree, allocations round-robin striped over every MN.  >= 1 builds
    #: the index as one sub-tree per contiguous key-range shard, each
    #: homed on one MN; ``num_shards=1`` with ``num_mns=1`` is
    #: event-sequence identical to the legacy path.
    num_shards: int = 0
    #: CN cache admission policy under sharding: ``shared`` (every CN
    #: caches any shard's nodes, the historical behavior) or
    #: ``partitioned`` (DEX-style: each CN's cache only admits nodes of
    #: the shards it owns; ownership handoff invalidates admitted lines).
    cache_mode: str = "shared"
    #: Start the hot-shard rebalancer (decaying-EWMA detection + online
    #: shard migration) alongside the workload (sharded mode only).
    rebalance_shards: bool = False
    #: RNG seed for client workload streams.
    seed: int = 42

    @property
    def total_clients(self) -> int:
        return self.num_cns * self.clients_per_cn

    def scaled(self, **overrides) -> "ClusterConfig":
        """A copy with fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


def scale_budget(paper_bytes: int, dataset_size: int) -> int:
    """Scale one of the paper's byte budgets to a smaller dataset."""
    scaled = int(paper_bytes * dataset_size / PAPER_DATASET_SIZE)
    return max(scaled, 4096)


@dataclass(frozen=True)
class ChimeConfig:
    """CHIME index parameters and feature switches (§5.1 defaults).

    The feature switches exist for the Figure 15 factor analysis: applying
    them one by one to a Sherman-like base reproduces each technique's
    contribution.
    """

    span: int = 64
    neighborhood: int = 8
    key_size: int = 8
    value_size: int = 8
    #: Replace sorted-array leaves with hopscotch leaf nodes.
    hopscotch_leaf: bool = True
    #: Piggyback the vacancy bitmap on lock words via masked-CAS.
    vacancy_bitmap: bool = True
    #: Replicate leaf metadata every H entries (vs a dedicated header READ).
    metadata_replication: bool = True
    #: Reuse sibling pointers for cache/half-split validation instead of
    #: replicating fence keys (saves 2*key_size bytes per replica).
    sibling_validation: bool = True
    #: Enable the hotness-aware speculative read path.
    speculative_read: bool = True
    #: Per-CN hotspot buffer budget in bytes (0 disables the buffer).
    hotspot_bytes: int = 1 << 19
    #: Store an 8-byte pointer per leaf entry and the value in an indirect
    #: block (variable-length KV support, §4.5).
    indirect_values: bool = False
    #: Model CXL 3.0 atomics instead of RDMA masked-CAS (§4.5): the lock
    #: CAS cannot piggyback the vacancy bitmap, so writers pay a dedicated
    #: READ of the lock word after acquiring it.
    cxl_atomics: bool = False
    #: Target leaf fill fraction for bulk loading.
    bulk_load_factor: float = 0.7
    #: Retry budget/backoff for client operations (None = the default
    #: policy, which matches the historical constants exactly).
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.neighborhood < 1 or self.neighborhood > 16:
            raise ValueError("neighborhood must be in [1, 16] (2-byte bitmap)")
        if self.span < self.neighborhood:
            raise ValueError("span must be >= neighborhood")
        if not self.hopscotch_leaf and self.vacancy_bitmap:
            raise ValueError("vacancy bitmap requires hopscotch leaves")
