"""Bounded retry policies for client operations.

Every retry loop in the client stack (remote lock acquisition,
optimistic read validation, whole-operation retraversal) runs under a
:class:`RetryPolicy`: a maximum attempt count, an optional deadline in
simulated time, and a backoff curve (linear or exponential, optionally
jittered from the client's seeded RNG).  Exhausting the budget raises a
typed :class:`~repro.errors.RetryExhaustedError` /
:class:`~repro.errors.OperationTimeoutError` instead of live-locking —
the behaviour an orphaned remote lock would otherwise cause.

The default policy reproduces the historical constants
(``sync.MAX_RETRIES`` attempts, linear backoff capped at 16x the base)
exactly, so enabling the layer changes no simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator, Optional

from repro.errors import OperationTimeoutError, RetryExhaustedError
from repro.sim.engine import Engine


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and how fast to retry a failing step."""

    #: Attempt budget; the (max_attempts + 1)-th check raises.
    max_attempts: int = 256
    #: Optional budget in simulated seconds from the first attempt.
    deadline: Optional[float] = None
    #: Base backoff delay (seconds) between attempts.
    base_backoff: float = 0.2e-6
    #: Exponential (base * multiplier^attempt) instead of linear growth.
    exponential: bool = False
    multiplier: float = 2.0
    #: Linear mode: delay grows as base * min(attempt + 1, linear_cap).
    linear_cap: int = 16
    #: Ceiling for exponential backoff delays (seconds).
    max_backoff: float = 64e-6
    #: Jitter fraction in [0, 1]: each delay is scaled by a factor drawn
    #: uniformly from [1 - jitter, 1 + jitter] using the seeded RNG.
    jitter: float = 0.0

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if self.exponential:
            value = min(self.base_backoff * self.multiplier ** attempt,
                        self.max_backoff)
        else:
            value = self.base_backoff * min(attempt + 1, self.linear_cap)
        if self.jitter and rng is not None:
            value *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(value, 0.0)

    def start(self, what: str, engine: Engine, rng=None) -> "RetryState":
        """Begin one bounded attempt sequence for the step named *what*."""
        return RetryState(self, what, engine, rng)

    def scaled(self, **overrides) -> "RetryPolicy":
        """A copy with fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


#: Mirrors the historical unbounded-loop constants; identical timing.
DEFAULT_RETRY_POLICY = RetryPolicy()


class RetryState:
    """Progress of one attempt sequence under a :class:`RetryPolicy`."""

    __slots__ = ("policy", "what", "engine", "rng", "attempt", "started")

    def __init__(self, policy: RetryPolicy, what: str, engine: Engine,
                 rng=None) -> None:
        self.policy = policy
        self.what = what
        self.engine = engine
        self.rng = rng
        self.attempt = 0
        self.started = engine.now

    def check(self) -> bool:
        """Account one attempt; True, or raises once the budget is gone.

        Written for ``while retry.check():`` loops — the bounded
        equivalent of ``while True:``.
        """
        policy = self.policy
        if self.attempt >= policy.max_attempts:
            raise RetryExhaustedError(
                f"{self.what}: gave up after {self.attempt} attempts")
        if policy.deadline is not None and \
                self.engine.now - self.started >= policy.deadline:
            raise OperationTimeoutError(
                f"{self.what}: deadline of {policy.deadline * 1e6:.1f}us "
                f"exceeded after {self.attempt} attempts")
        self.attempt += 1
        return True

    def next_delay(self, cap: Optional[int] = None) -> float:
        """The backoff after the current (just-checked) attempt failed.

        *cap* limits the effective attempt index (the insert path keeps
        its backoff short because contention there is transient).
        """
        index = self.attempt - 1
        if cap is not None:
            index = min(index, cap)
        return self.policy.delay(index, self.rng)

    def backoff(self, cap: Optional[int] = None) -> Generator:
        """Sleep the backoff for the just-failed attempt (a process step)."""
        yield self.engine.timeout(self.next_delay(cap))
