"""Replicate statistics: mean / CI and a Mann-Whitney rank test.

Pure stdlib.  The confidence interval uses Student's t critical values
(two-sided, 95%) so small replicate counts get honest widths; the
significance check between two commits' replicate sets is a two-sided
Mann-Whitney U with normal approximation, tie correction, and
continuity correction — exactly the test fuzzbench-style campaign
services use for "did this change regress this cell" questions, because
it assumes nothing about the latency/throughput distribution shape.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

__all__ = ["summarize", "mann_whitney_u", "compare"]

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706,
    2: 4.303,
    3: 3.182,
    4: 2.776,
    5: 2.571,
    6: 2.447,
    7: 2.365,
    8: 2.306,
    9: 2.262,
    10: 2.228,
    15: 2.131,
    20: 2.086,
    30: 2.042,
}


def _t_critical(df: int) -> float:
    if df <= 0:
        return 0.0
    best = 1.96
    for known_df in sorted(_T95):
        if df <= known_df:
            return _T95[known_df]
        best = _T95[known_df]
    return min(best, 1.96) if df > 30 else best


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """n / mean / sample stdev / 95% CI half-width for one replicate set."""
    n = len(values)
    if n == 0:
        return {"n": 0, "mean": 0.0, "stdev": 0.0, "ci95": 0.0}
    mean = sum(values) / n
    if n < 2:
        return {"n": n, "mean": mean, "stdev": 0.0, "ci95": 0.0}
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    ci95 = _t_critical(n - 1) * stdev / math.sqrt(n)
    return {"n": n, "mean": mean, "stdev": stdev, "ci95": ci95}


def _ranks(values: Sequence[float]) -> Tuple[list, float]:
    """Average ranks (1-based) plus the tie-correction sum ``t^3 - t``."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    tie_sum = 0.0
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        tied = j - i + 1
        average = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        if tied > 1:
            tie_sum += tied**3 - tied
        i = j + 1
    return ranks, tie_sum


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sided Mann-Whitney U; returns ``(u, p)``.

    Normal approximation with tie and continuity corrections.  With an
    empty side, or when every value is identical, the test is undefined
    and ``p = 1.0`` is returned (never significant).
    """
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        return 0.0, 1.0
    ranks, tie_sum = _ranks(list(a) + list(b))
    r1 = sum(ranks[:n1])
    u1 = n1 * n2 + n1 * (n1 + 1) / 2 - r1
    u = min(u1, n1 * n2 - u1)
    n = n1 + n2
    mu = n1 * n2 / 2
    tie_term = tie_sum / (n * (n - 1)) if n > 1 else 0.0
    variance = n1 * n2 / 12 * ((n + 1) - tie_term)
    if variance <= 0:
        return u, 1.0
    z = (u - mu + 0.5) / math.sqrt(variance)
    p = math.erfc(abs(z) / math.sqrt(2))
    return u, min(1.0, p)


def compare(
    old: Sequence[float],
    new: Sequence[float],
    alpha: float = 0.05,
    min_rel_drop: float = 0.05,
) -> Dict[str, float]:
    """Regression comparison of two replicate sets (higher is better).

    ``regressed`` requires both a relative mean drop beyond
    ``min_rel_drop`` *and* Mann-Whitney significance at ``alpha``;
    ``suspect`` flags a drop that is too noisy to call (small n).
    """
    old_mean = summarize(old)["mean"]
    new_mean = summarize(new)["mean"]
    rel_change = (new_mean - old_mean) / old_mean if old_mean else 0.0
    u, p = mann_whitney_u(old, new)
    dropped = rel_change < -min_rel_drop
    return {
        "old_mean": old_mean,
        "new_mean": new_mean,
        "rel_change": rel_change,
        "u": u,
        "p": p,
        "regressed": bool(dropped and p < alpha),
        "suspect": bool(dropped and p >= alpha),
    }
