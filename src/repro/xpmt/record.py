"""Routing committed benchmark tables into machine-readable sinks.

``benchmarks/conftest.py::record_table`` calls :func:`record_rows` for
every figure table it prints: rows are always dual-written as JSONL next
to the ``results/*.txt`` text table, and — when a campaign store is
active via the ``REPRO_CAMPAIGN_DB`` environment variable — also
persisted into the store's ``figure_tables`` table under the current
commit, so running the figure suites inside a campaign populates the
perf database for free.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.xpmt.spec import current_commit

__all__ = ["CAMPAIGN_DB_ENV", "CAMPAIGN_ID_ENV", "record_rows", "write_jsonl"]

#: Environment variable naming the active campaign store, if any.
CAMPAIGN_DB_ENV = "REPRO_CAMPAIGN_DB"

#: Campaign id figure tables are attributed to (optional).
CAMPAIGN_ID_ENV = "REPRO_CAMPAIGN_ID"


def write_jsonl(path: str, rows: List[Dict]) -> None:
    """One JSON object per line; the machine-readable twin of a table."""
    with open(path, "w") as sink:
        for row in rows:
            sink.write(json.dumps(row, sort_keys=True) + "\n")


def active_store_path() -> str:
    """The campaign store path routed via the environment ("" = none)."""
    return os.environ.get(CAMPAIGN_DB_ENV, "").strip()


def record_rows(name: str, rows: List[Dict], jsonl_path: str, seed: int) -> None:
    """Dual-write one figure table: JSONL always, store when active."""
    write_jsonl(jsonl_path, rows)
    db_path = active_store_path()
    if not db_path:
        return
    from repro.xpmt.store import CampaignStore

    campaign_id = os.environ.get(CAMPAIGN_ID_ENV, "").strip()
    with CampaignStore(db_path) as store:
        store.record_table(name, rows, current_commit(), seed, campaign_id=campaign_id)
