"""Deterministic campaign specs and their content hashes.

A campaign is a cross-product of *cells* (index family x workload x
client count x pipeline depth, plus the per-point knobs a
:class:`~repro.bench.parallel.PointSpec` accepts) and *seeds*.  Each
(cell, seed) pair is one sweep point, persisted in the campaign store
keyed by ``(commit, seed, spec_hash)``.

The spec hash must never alias across configurations: it covers the
cell's own fields, the resolved scale preset (name *and* the concrete
numbers, so an edited preset re-keys), the CHIME overrides the runner
will apply, and any unrecognized ``REPRO_*`` environment knobs.  Knobs
the runner resolves explicitly (scale, depth, seed, jobs, campaign
routing) are excluded from the environment section because their
resolved values are already first-class hash fields — including the raw
environment too would alias identical runs apart.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.scale import Scale

__all__ = [
    "CellSpec",
    "CampaignPlan",
    "current_commit",
    "relevant_env",
    "spec_hash",
]

#: Spec-payload schema version; bump when the payload shape changes so
#: old stored points can never collide with new ones.
SPEC_VERSION = 1

#: ``REPRO_*`` knobs whose resolved values are explicit payload fields
#: (or provably cannot change a point's result, like the worker count).
RESOLVED_ENV = frozenset(
    {
        "REPRO_CAMPAIGN_DB",
        "REPRO_CAMPAIGN_ID",
        "REPRO_COMMIT",
        "REPRO_DEPTH",
        "REPRO_JOBS",
        "REPRO_SCALE",
        "REPRO_SEED",
        # Campaign cells pin sync_mode explicitly (a first-class payload
        # field when non-default), so the environment knob never reaches
        # a campaign point's cluster config.
        "REPRO_SYNC_MODE",
        # Same for the sharding knobs: cells pin num_mns and cache_mode
        # (payload fields when non-default) and the runner derives
        # num_shards from them, so these never reach a campaign point.
        # REPRO_REBALANCE is deliberately NOT resolved — it has no cell
        # field, so setting it re-keys the spec hash.
        "REPRO_NUM_MNS",
        "REPRO_SHARDS",
        "REPRO_CACHE_MODE",
        # Cells pin placement too (payload field when non-default); the
        # runner exports the pinned value around each point, so the
        # ambient knob never reaches a campaign point.
        "REPRO_PLACEMENT",
    }
)


def relevant_env() -> Dict[str, str]:
    """Unresolved ``REPRO_*`` environment knobs, for the spec payload."""
    env = {}
    for key in sorted(os.environ):
        if key.startswith("REPRO_") and key not in RESOLVED_ENV:
            env[key] = os.environ[key]
    return env


def current_commit() -> str:
    """The commit hash results are keyed under.

    ``REPRO_COMMIT`` overrides (tests and CI matrix builds use this to
    fabricate trajectories); otherwise ``git rev-parse HEAD``; falls
    back to ``"unknown"`` outside a checkout.
    """
    override = os.environ.get("REPRO_COMMIT", "").strip()
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell: everything but the seed and the commit."""

    index: str
    workload: str
    clients: int
    depth: int = 1
    value_size: int = 8
    theta: float = 0.99
    span: Optional[int] = None
    neighborhood: Optional[int] = None
    #: Lock synchronization mode (see :mod:`repro.core.adaptive`).
    sync_mode: str = "optimistic"
    #: Memory nodes; > 1 shards the key space one shard per MN (see
    #: :mod:`repro.cluster.shards`).
    num_mns: int = 1
    #: CN cache admission under sharding ("shared" or "partitioned").
    cache_mode: str = "shared"
    #: Index placement mode ("cn", "mn", or "auto"); only placement-
    #: aware families (flexkv) read it, via ``REPRO_PLACEMENT``.
    placement: str = "auto"

    def label(self) -> str:
        """Compact human label used by reports and status tables."""
        text = f"{self.index}/{self.workload} c{self.clients}"
        if self.depth != 1:
            text += f" d{self.depth}"
        if self.value_size != 8:
            text += f" v{self.value_size}"
        if self.span is not None:
            text += f" s{self.span}"
        if self.neighborhood is not None:
            text += f" h{self.neighborhood}"
        if self.sync_mode != "optimistic":
            text += f" {self.sync_mode}"
        if self.num_mns != 1:
            text += f" m{self.num_mns}"
        if self.cache_mode != "shared":
            text += f" {self.cache_mode}"
        if self.placement != "auto":
            text += f" p:{self.placement}"
        return text


def _cell_payload(cell: CellSpec) -> Dict:
    """A cell's hash payload fields.

    ``sync_mode`` is omitted at its optimistic default so every spec
    hash and auto campaign id minted before the field existed still
    resolves to the same stored points; non-default modes re-key.  The
    sharding fields follow the same rule: ``num_mns`` is omitted at 1
    and ``cache_mode`` at "shared", so pre-sharding campaign ids and
    point keys survive unchanged.
    """
    payload = asdict(cell)
    if payload.get("sync_mode") == "optimistic":
        del payload["sync_mode"]
    if payload.get("num_mns") == 1:
        del payload["num_mns"]
    if payload.get("cache_mode") == "shared":
        del payload["cache_mode"]
    if payload.get("placement") == "auto":
        del payload["placement"]
    return payload


def _scale_payload(scale: Scale) -> Dict:
    return {
        "name": scale.name,
        "num_keys": scale.num_keys,
        "ops_per_client": scale.ops_per_client,
        "nic_scale": scale.nic_scale,
        "num_mns": scale.num_mns,
        "key_space_factor": scale.key_space_factor,
    }


def spec_payload(cell: CellSpec, scale: Scale, chime_overrides: Optional[Dict] = None) -> Dict:
    """The canonical (JSON-stable) description one spec hash covers."""
    return {
        "v": SPEC_VERSION,
        "cell": _cell_payload(cell),
        "scale": _scale_payload(scale),
        "chime_overrides": dict(chime_overrides) if chime_overrides else None,
        "env": relevant_env(),
    }


def spec_hash(payload: Dict) -> str:
    """A 16-hex-digit content hash of a canonical spec payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignPlan:
    """A campaign: cells x seeds at one scale, with a stable identity."""

    scale: Scale
    cells: Tuple[CellSpec, ...]
    seeds: Tuple[int, ...]
    name: str = ""
    #: Extra CHIME overrides applied on top of the scale's own (rare).
    chime_overrides: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    @property
    def campaign_id(self) -> str:
        """Explicit name, else a content-derived ``auto-<digest>`` id.

        Deterministic so rerunning the same command resumes the same
        campaign instead of forking a new one.
        """
        if self.name:
            return self.name
        digest = spec_hash(
            {
                "scale": _scale_payload(self.scale),
                "cells": [_cell_payload(cell) for cell in self.cells],
                "seeds": list(self.seeds),
            }
        )
        return f"auto-{digest[:10]}"

    def describe(self) -> Dict:
        """JSON-stable plan description stored in the campaigns table."""
        return {
            "name": self.name,
            "scale": _scale_payload(self.scale),
            "cells": [_cell_payload(cell) for cell in self.cells],
            "seeds": list(self.seeds),
            "chime_overrides": dict(self.chime_overrides) or None,
        }

    def cell_overrides(self, cell: CellSpec) -> Optional[Dict]:
        """The CHIME overrides the runner applies to *cell*'s points."""
        from repro.registry import get_family

        if not get_family(cell.index).accepts_overrides:
            return None
        overrides = dict(self.scale.chime_overrides())
        overrides.update(dict(self.chime_overrides))
        return overrides

    def targets(self) -> List[Tuple[CellSpec, int, str, Dict]]:
        """Every (cell, seed, spec_hash, payload) point, in plan order."""
        out = []
        for cell in self.cells:
            payload = spec_payload(cell, self.scale, self.cell_overrides(cell))
            digest = spec_hash(payload)
            for seed in self.seeds:
                out.append((cell, seed, digest, payload))
        return out
