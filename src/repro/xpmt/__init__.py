"""repro.xpmt — the experiment campaign service.

A fuzzbench-style layer over the figure sweeps:

* :mod:`repro.xpmt.spec` — deterministic sweep-cell specs and their
  content hashes; points are keyed ``(commit, seed, spec_hash)``;
* :mod:`repro.xpmt.store` — the sqlite campaign store (stdlib only);
* :mod:`repro.xpmt.runner` — the resumable multi-seed runner layered on
  :mod:`repro.bench.parallel` (stored points are skipped, never redone);
* :mod:`repro.xpmt.stats` — replicate mean/CI and Mann-Whitney checks;
* :mod:`repro.xpmt.report` — static HTML reports with SVG sparklines
  and the regression verdict against the stored trajectory and the
  ``BENCH_perf.json`` baseline;
* :mod:`repro.xpmt.record` — the ``record_table`` fixture's JSONL and
  store routing.

Surfaced as ``python -m repro campaign run|status|report|diff``.
"""

from repro.xpmt.report import build_report, collect_cells, diff_cells
from repro.xpmt.runner import RunSummary, campaign_status, run_campaign
from repro.xpmt.spec import CampaignPlan, CellSpec, current_commit, spec_hash
from repro.xpmt.store import CampaignStore, PointRow

__all__ = [
    "CampaignPlan",
    "CampaignStore",
    "CellSpec",
    "PointRow",
    "RunSummary",
    "build_report",
    "campaign_status",
    "collect_cells",
    "current_commit",
    "diff_cells",
    "run_campaign",
    "spec_hash",
]
