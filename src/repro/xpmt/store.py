"""The sqlite campaign store (stdlib ``sqlite3`` only).

Every sweep point ever executed is persisted keyed by
``(commit, seed, spec_hash)`` — the primary key — so campaigns are
incremental across reruns and across PRs: a resumed campaign skips
stored points, and a later commit's campaign lays a new layer of the
same spec hashes next to the old ones, forming the per-cell trajectory
the report's sparklines and regression checks read.

Two secondary tables ride along: ``campaigns`` (plan descriptions, so
``status`` can report progress without re-deriving the matrix) and
``figure_tables`` (rows routed from the ``record_table`` benchmark
fixture, so the committed figure suites populate the store for free).
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["CampaignStore", "PointRow"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS points (
    commit_hash TEXT NOT NULL,
    seed INTEGER NOT NULL,
    spec_hash TEXT NOT NULL,
    campaign_id TEXT NOT NULL DEFAULT '',
    spec_json TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (commit_hash, seed, spec_hash)
);
CREATE INDEX IF NOT EXISTS idx_points_spec ON points (spec_hash);
CREATE INDEX IF NOT EXISTS idx_points_campaign ON points (campaign_id);
CREATE TABLE IF NOT EXISTS campaigns (
    id TEXT PRIMARY KEY,
    name TEXT NOT NULL DEFAULT '',
    commit_hash TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS figure_tables (
    commit_hash TEXT NOT NULL,
    name TEXT NOT NULL,
    seed INTEGER NOT NULL,
    campaign_id TEXT NOT NULL DEFAULT '',
    rows_json TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (commit_hash, name, seed)
);
"""


@dataclass(frozen=True)
class PointRow:
    """One stored sweep point, decoded."""

    commit: str
    seed: int
    spec_hash: str
    campaign_id: str
    spec: Dict
    metrics: Dict
    created_at: float


class CampaignStore:
    """Connection-owning wrapper around the campaign sqlite database."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaigns ----------------------------------------------------------

    def upsert_campaign(self, campaign_id: str, name: str, commit: str, spec: Dict) -> None:
        """Record (or refresh) a campaign's plan description."""
        self._conn.execute(
            "INSERT INTO campaigns (id, name, commit_hash, spec_json, created_at)"
            " VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT(id) DO UPDATE SET"
            " name = excluded.name, commit_hash = excluded.commit_hash,"
            " spec_json = excluded.spec_json",
            (campaign_id, name, commit, json.dumps(spec, sort_keys=True), time.time()),
        )
        self._conn.commit()

    def campaigns(self) -> List[Dict]:
        """Every recorded campaign, oldest first."""
        rows = self._conn.execute(
            "SELECT id, name, commit_hash, spec_json, created_at"
            " FROM campaigns ORDER BY created_at"
        ).fetchall()
        return [
            {
                "id": row[0],
                "name": row[1],
                "commit": row[2],
                "spec": json.loads(row[3]),
                "created_at": row[4],
            }
            for row in rows
        ]

    def campaign(self, campaign_id: str) -> Optional[Dict]:
        for row in self.campaigns():
            if row["id"] == campaign_id:
                return row
        return None

    # -- points -------------------------------------------------------------

    def has_point(self, commit: str, seed: int, spec_hash: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM points WHERE commit_hash = ? AND seed = ? AND spec_hash = ?",
            (commit, seed, spec_hash),
        ).fetchone()
        return row is not None

    def put_point(
        self,
        commit: str,
        seed: int,
        spec_hash: str,
        spec: Dict,
        metrics: Dict,
        campaign_id: str = "",
    ) -> bool:
        """Store one point; returns False when the key already existed.

        First write wins (``INSERT OR IGNORE``): a resumed campaign must
        never overwrite the replicate it is resuming past.
        """
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO points"
            " (commit_hash, seed, spec_hash, campaign_id, spec_json, metrics_json, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                commit,
                seed,
                spec_hash,
                campaign_id,
                json.dumps(spec, sort_keys=True),
                json.dumps(metrics, sort_keys=True),
                time.time(),
            ),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def points(
        self,
        spec_hash: Optional[str] = None,
        commit: Optional[str] = None,
        campaign_id: Optional[str] = None,
    ) -> List[PointRow]:
        """Stored points matching the given filters, insertion-ordered."""
        clauses, args = [], []
        if spec_hash is not None:
            clauses.append("spec_hash = ?")
            args.append(spec_hash)
        if commit is not None:
            clauses.append("commit_hash = ?")
            args.append(commit)
        if campaign_id is not None:
            clauses.append("campaign_id = ?")
            args.append(campaign_id)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            "SELECT commit_hash, seed, spec_hash, campaign_id, spec_json,"
            f" metrics_json, created_at FROM points{where}"
            " ORDER BY created_at, seed",
            args,
        ).fetchall()
        return [
            PointRow(
                commit=row[0],
                seed=row[1],
                spec_hash=row[2],
                campaign_id=row[3],
                spec=json.loads(row[4]),
                metrics=json.loads(row[5]),
                created_at=row[6],
            )
            for row in rows
        ]

    def commit_order(self, spec_hashes: Optional[List[str]] = None) -> List[str]:
        """Commits holding points, ordered by when each first appeared.

        This is the x-axis of the trajectory sparklines: commit hashes
        do not sort chronologically, their first insertion time does.
        """
        if spec_hashes:
            marks = ",".join("?" for _ in spec_hashes)
            rows = self._conn.execute(
                "SELECT commit_hash, MIN(created_at) AS first_seen FROM points"
                f" WHERE spec_hash IN ({marks})"
                " GROUP BY commit_hash ORDER BY first_seen",
                spec_hashes,
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT commit_hash, MIN(created_at) AS first_seen FROM points"
                " GROUP BY commit_hash ORDER BY first_seen"
            ).fetchall()
        return [row[0] for row in rows]

    def point_count(self, campaign_id: Optional[str] = None, commit: Optional[str] = None) -> int:
        clauses, args = [], []
        if campaign_id is not None:
            clauses.append("campaign_id = ?")
            args.append(campaign_id)
        if commit is not None:
            clauses.append("commit_hash = ?")
            args.append(commit)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        row = self._conn.execute(f"SELECT COUNT(*) FROM points{where}", args).fetchone()
        return int(row[0])

    # -- figure tables ------------------------------------------------------

    def record_table(
        self,
        name: str,
        rows: List[Dict],
        commit: str,
        seed: int,
        campaign_id: str = "",
    ) -> None:
        """Store one figure table (latest write wins per commit/seed)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO figure_tables"
            " (commit_hash, name, seed, campaign_id, rows_json, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (commit, name, seed, campaign_id, json.dumps(rows, sort_keys=True), time.time()),
        )
        self._conn.commit()

    def tables(self, name: Optional[str] = None, commit: Optional[str] = None) -> List[Dict]:
        clauses, args = [], []
        if name is not None:
            clauses.append("name = ?")
            args.append(name)
        if commit is not None:
            clauses.append("commit_hash = ?")
            args.append(commit)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            "SELECT commit_hash, name, seed, campaign_id, rows_json, created_at"
            f" FROM figure_tables{where} ORDER BY created_at",
            args,
        ).fetchall()
        return [
            {
                "commit": row[0],
                "name": row[1],
                "seed": row[2],
                "campaign_id": row[3],
                "rows": json.loads(row[4]),
                "created_at": row[5],
            }
            for row in rows
        ]
