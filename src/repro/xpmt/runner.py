"""The resumable campaign runner.

Layered on :mod:`repro.bench.parallel`: a campaign's missing points
(those without a ``(commit, seed, spec_hash)`` row in the store) are
materialized as :class:`~repro.bench.parallel.PointSpec` instances and
fanned out through :func:`~repro.bench.parallel.run_sweep`, so a
campaign parallelizes exactly like the figure sweeps do.  Stored points
are never re-executed and never overwritten — interrupt a campaign at
any moment and the next ``run`` picks up the remainder.

Each replicate's seed is threaded into the point's cluster config, which
seeds the dataset, the workload streams, and every other RNG in the
simulation: a stored point is reproducible point-by-point from its key
alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.parallel import PointSpec, run_sweep
from repro.obs.campaign import campaign_scope
from repro.xpmt.spec import CampaignPlan, CellSpec, current_commit
from repro.xpmt.store import CampaignStore

__all__ = ["RunSummary", "build_point_spec", "run_campaign", "campaign_status"]


@dataclass
class RunSummary:
    """What one ``campaign run`` invocation did."""

    campaign_id: str
    commit: str
    total: int
    executed: int
    skipped: int
    #: Points still missing after this run (only with ``limit``).
    remaining: int
    executed_keys: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    def describe(self) -> str:
        text = (
            f"campaign {self.campaign_id} @ {self.commit[:12]}: "
            f"{self.executed} executed, {self.skipped} skipped (stored), "
            f"{self.total} total"
        )
        if self.remaining:
            text += f", {self.remaining} remaining"
        return text


def build_point_spec(plan: CampaignPlan, cell: CellSpec, seed: int) -> PointSpec:
    """The picklable sweep point for one (cell, seed) replicate."""
    scale = plan.scale
    # Shard one sub-tree per MN when the cell scales MNs out (or asks
    # for partitioned cache ownership); num_shards is pinned explicitly
    # so the REPRO_SHARDS environment knob never reaches campaign points.
    sharded = cell.num_mns > 1 or cell.cache_mode != "shared"
    config = scale.cluster_config(clients=cell.clients, seed=seed,
                                  sync_mode=cell.sync_mode,
                                  num_mns=cell.num_mns,
                                  num_shards=cell.num_mns if sharded else 0,
                                  cache_mode=cell.cache_mode)
    if cell.depth != 1:
        config = config.scaled(pipeline_depth=cell.depth)
    return PointSpec(
        index_name=cell.index,
        workload_name=cell.workload,
        num_keys=scale.num_keys,
        ops_per_client=scale.ops_per_client,
        cluster_config=config,
        value_size=cell.value_size,
        span=cell.span,
        neighborhood=cell.neighborhood,
        theta=cell.theta,
        chime_overrides=plan.cell_overrides(cell),
        key_space=scale.key_space,
        depth=cell.depth,
        # Always pinned (never None) so a stored campaign point can
        # never depend on the ambient REPRO_PLACEMENT knob.
        placement=cell.placement,
    )


def run_campaign(
    store: CampaignStore,
    plan: CampaignPlan,
    jobs: Optional[int] = None,
    limit: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> RunSummary:
    """Run (or resume) *plan* against *store*; returns what happened.

    ``limit`` caps how many missing points execute in this invocation —
    the hook the resume tests use to interrupt a campaign mid-sweep, and
    a budget valve for huge matrices.
    """
    commit = current_commit()
    campaign_id = plan.campaign_id
    store.upsert_campaign(campaign_id, plan.name, commit, plan.describe())
    targets = plan.targets()
    missing = [
        (cell, seed, digest, payload)
        for cell, seed, digest, payload in targets
        if not store.has_point(commit, seed, digest)
    ]
    to_run = missing if limit is None else missing[: max(0, limit)]
    if echo is not None:
        echo(
            f"[campaign {campaign_id}] {len(targets)} points, "
            f"{len(targets) - len(missing)} stored, running {len(to_run)}"
        )
    specs = [build_point_spec(plan, cell, seed) for cell, seed, _, _ in to_run]
    with campaign_scope(campaign_id):
        results = run_sweep(specs, jobs=jobs)
    executed_keys = []
    for (cell, seed, digest, payload), result in zip(to_run, results):
        store.put_point(
            commit,
            seed,
            digest,
            payload,
            result.summary(),
            campaign_id=campaign_id,
        )
        executed_keys.append((seed, digest))
    return RunSummary(
        campaign_id=campaign_id,
        commit=commit,
        total=len(targets),
        executed=len(to_run),
        skipped=len(targets) - len(missing),
        remaining=len(missing) - len(to_run),
        executed_keys=executed_keys,
    )


def campaign_status(store: CampaignStore) -> List[Dict]:
    """One status row per recorded campaign (for the CLI table)."""
    commit = current_commit()
    rows = []
    for campaign in store.campaigns():
        spec = campaign["spec"]
        expected = len(spec.get("cells", ())) * len(spec.get("seeds", ()))
        rows.append(
            {
                "id": campaign["id"],
                "name": campaign["name"] or "-",
                "cells": len(spec.get("cells", ())),
                "seeds": len(spec.get("seeds", ())),
                "expected": expected,
                "stored": store.point_count(campaign_id=campaign["id"]),
                "at_commit": store.point_count(campaign_id=campaign["id"], commit=commit),
                "scale": spec.get("scale", {}).get("name", "?"),
            }
        )
    return rows
