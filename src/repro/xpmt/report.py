"""Zero-dependency static HTML campaign reports + regression verdicts.

The report is one self-contained HTML document: a summary table with an
inline SVG sparkline per cell (mean throughput across the stored commit
trajectory) and a per-cell breakdown of every commit's replicate
statistics.  No timestamps are embedded, so the same stored points
always render byte-identical HTML — the resume tests rely on that.

The verdict diffs the campaign's newest commit against the previous one
in the stored trajectory (Mann-Whitney over the seed replicates) and,
where a cell is directly comparable, against the pinned
``BENCH_perf.json`` baseline.  A cell is baseline-comparable only when
it was measured under the perf suite's own operating point (scale
``perf``, YCSB-C, the suite's client count, depth 1): at any other
scale the absolute numbers mean something else, and pretending
otherwise would manufacture false regressions.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.xpmt import stats
from repro.xpmt.store import CampaignStore

__all__ = [
    "CellSeries",
    "build_report",
    "collect_cells",
    "diff_cells",
    "regression_verdict",
    "render_html",
]

#: The metric regressions are judged on (higher is better).
PRIMARY_METRIC = "throughput_mops"

#: Relative mean drop below which a cell is never flagged.
DEFAULT_MIN_DROP = 0.05

#: Mann-Whitney significance level for trajectory regressions.
DEFAULT_ALPHA = 0.05

#: Allowed relative shortfall against the BENCH_perf.json baseline
#: (wide: baseline seeds differ from campaign seeds).
DEFAULT_BASELINE_TOLERANCE = 0.25


@dataclass
class CellSeries:
    """One cell's stored trajectory: replicate values per commit."""

    spec_hash: str
    spec: Dict
    label: str
    #: Commit -> primary-metric values, one per stored seed.
    by_commit: Dict[str, List[float]] = field(default_factory=dict)
    #: Commit -> per-metric mean of the auxiliary metrics.
    aux_by_commit: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Commits ordered by first appearance in the store.
    commit_order: List[str] = field(default_factory=list)

    def values(self, commit: str) -> List[float]:
        return self.by_commit.get(commit, [])

    def head_commit(self) -> Optional[str]:
        return self.commit_order[-1] if self.commit_order else None

    def base_commit(self) -> Optional[str]:
        return self.commit_order[-2] if len(self.commit_order) >= 2 else None


def _cell_label(spec: Dict) -> str:
    cell = spec.get("cell", {})
    label = f"{cell.get('index', '?')}/{cell.get('workload', '?')} c{cell.get('clients', '?')}"
    if cell.get("depth", 1) != 1:
        label += f" d{cell['depth']}"
    if cell.get("value_size", 8) != 8:
        label += f" v{cell['value_size']}"
    if cell.get("span") is not None:
        label += f" s{cell['span']}"
    if cell.get("neighborhood") is not None:
        label += f" h{cell['neighborhood']}"
    if cell.get("sync_mode", "optimistic") != "optimistic":
        label += f" {cell['sync_mode']}"
    if cell.get("num_mns", 1) != 1:
        label += f" m{cell['num_mns']}"
    if cell.get("cache_mode", "shared") != "shared":
        label += f" {cell['cache_mode']}"
    scale = spec.get("scale", {}).get("name")
    if scale:
        label += f" [{scale}]"
    return label


AUX_METRICS = ("p50_us", "p99_us", "rtts_per_op")


def collect_cells(store: CampaignStore, campaign_id: str) -> List[CellSeries]:
    """The campaign's cells with their full cross-commit trajectories.

    Trajectory points are matched by spec hash across *all* campaigns
    in the store, so renaming a campaign does not orphan its history.
    """
    own_points = store.points(campaign_id=campaign_id)
    spec_hashes = sorted({p.spec_hash for p in own_points})
    if not spec_hashes:
        return []
    commit_order = store.commit_order(spec_hashes)
    rank = {commit: i for i, commit in enumerate(commit_order)}
    cells: List[CellSeries] = []
    for spec_hash in spec_hashes:
        points = sorted(store.points(spec_hash=spec_hash), key=lambda p: (rank[p.commit], p.seed))
        series = CellSeries(
            spec_hash=spec_hash,
            spec=points[0].spec,
            label=_cell_label(points[0].spec),
        )
        aux_sums: Dict[str, Dict[str, List[float]]] = {}
        for point in points:
            value = float(point.metrics.get(PRIMARY_METRIC, 0.0))
            series.by_commit.setdefault(point.commit, []).append(value)
            sums = aux_sums.setdefault(point.commit, {})
            for metric in AUX_METRICS:
                if metric in point.metrics:
                    sums.setdefault(metric, []).append(float(point.metrics[metric]))
        for commit, sums in aux_sums.items():
            series.aux_by_commit[commit] = {
                metric: sum(vals) / len(vals) for metric, vals in sums.items()
            }
        series.commit_order = [c for c in commit_order if c in series.by_commit]
        cells.append(series)
    cells.sort(key=lambda s: (s.label, s.spec_hash))
    return cells


# -- verdict -----------------------------------------------------------------


def _baseline_comparable(spec: Dict, baseline: Dict) -> Optional[float]:
    """The baseline sim throughput for *spec*, or None if incomparable."""
    cell = spec.get("cell", {})
    scale = spec.get("scale", {})
    base_scale = baseline.get("scale", {})
    point = baseline.get("points", {}).get(cell.get("index"))
    if point is None or "sim_throughput_mops" not in point:
        return None
    if scale.get("name") != "perf" or cell.get("workload") != "C":
        return None
    if cell.get("clients") != base_scale.get("clients") or cell.get("depth", 1) != 1:
        return None
    return float(point["sim_throughput_mops"])


def regression_verdict(
    cells: Sequence[CellSeries],
    baseline: Optional[Dict] = None,
    alpha: float = DEFAULT_ALPHA,
    min_drop: float = DEFAULT_MIN_DROP,
    baseline_tolerance: float = DEFAULT_BASELINE_TOLERANCE,
) -> Dict:
    """Pass/fail verdict over trajectory diffs and the perf baseline."""
    problems: List[str] = []
    warnings: List[str] = []
    checks: List[Dict] = []
    for cell in cells:
        head, base = cell.head_commit(), cell.base_commit()
        check: Dict = {"cell": cell.label, "spec_hash": cell.spec_hash}
        if head is not None and base is not None:
            comparison = stats.compare(
                cell.values(base), cell.values(head), alpha=alpha, min_rel_drop=min_drop
            )
            check["trajectory"] = {"base": base, "head": head, **comparison}
            if comparison["regressed"]:
                problems.append(
                    f"{cell.label}: {comparison['rel_change'] * 100:+.1f}% vs "
                    f"{base[:12]} (p={comparison['p']:.3f})"
                )
            elif comparison["suspect"]:
                warnings.append(
                    f"{cell.label}: {comparison['rel_change'] * 100:+.1f}% vs "
                    f"{base[:12]} but not significant (p={comparison['p']:.3f})"
                )
        if baseline is not None and head is not None:
            base_value = _baseline_comparable(cell.spec, baseline)
            if base_value is not None and base_value > 0:
                head_mean = stats.summarize(cell.values(head))["mean"]
                ratio = head_mean / base_value
                check["baseline"] = {"baseline_mops": base_value, "ratio": ratio}
                if ratio < 1.0 - baseline_tolerance:
                    problems.append(
                        f"{cell.label}: {head_mean:.4f} Mops is "
                        f"{(1.0 - ratio) * 100:.1f}% below the BENCH_perf.json "
                        f"baseline ({base_value:.4f} Mops)"
                    )
            else:
                check["baseline"] = None
        checks.append(check)
    return {"ok": not problems, "problems": problems, "warnings": warnings, "checks": checks}


def diff_cells(cells: Sequence[CellSeries], base: str, head: str) -> List[Dict]:
    """Per-cell comparison rows between two stored commits."""
    rows = []
    for cell in cells:
        old, new = cell.values(base), cell.values(head)
        if not old and not new:
            continue
        comparison = stats.compare(old, new)
        rows.append(
            {
                "cell": cell.label,
                "n_base": len(old),
                "n_head": len(new),
                "base_mean": round(comparison["old_mean"], 4),
                "head_mean": round(comparison["new_mean"], 4),
                "delta_pct": round(comparison["rel_change"] * 100, 2),
                "p": round(comparison["p"], 4),
                "verdict": "REGRESSED"
                if comparison["regressed"]
                else ("suspect" if comparison["suspect"] else "ok"),
            }
        )
    return rows


# -- HTML --------------------------------------------------------------------

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em; color: #1a1a1a; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th { background: #f2f2f2; } td.l, th.l { text-align: left; }
.pass { color: #0a7d28; font-weight: bold; }
.fail { color: #b01818; font-weight: bold; }
.warn { color: #a06000; }
svg polyline { fill: none; stroke: #2060c0; stroke-width: 1.5; }
svg circle { fill: #b01818; }
code { background: #f6f6f6; padding: 0 0.2em; }
"""


def sparkline_svg(values: Sequence[float], width: int = 140, height: int = 28) -> str:
    """An inline SVG sparkline; the last point is marked with a dot."""
    if not values:
        return ""
    pad = 3.0
    lo, hi = min(values), max(values)
    spread = (hi - lo) or 1.0
    span_x = width - 2 * pad
    step = span_x / (len(values) - 1) if len(values) > 1 else 0.0
    coords = []
    for i, value in enumerate(values):
        x = pad + (step * i if len(values) > 1 else span_x / 2)
        y = pad + (height - 2 * pad) * (1.0 - (value - lo) / spread)
        coords.append((round(x, 1), round(y, 1)))
    points = " ".join(f"{x},{y}" for x, y in coords)
    last_x, last_y = coords[-1]
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline points="{points}"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2"/></svg>'
    )


def _fmt(value: float, digits: int = 4) -> str:
    return f"{value:.{digits}f}"


def render_html(
    campaign_id: str,
    cells: Sequence[CellSeries],
    verdict: Dict,
    baseline_path: str = "",
) -> str:
    """The full static report document."""
    trajectory_by_hash = {c["spec_hash"]: c for c in verdict["checks"]}
    parts: List[str] = []
    parts.append("<!doctype html><html><head><meta charset='utf-8'>")
    parts.append(f"<title>campaign {html.escape(campaign_id)}</title>")
    parts.append(f"<style>{_CSS}</style></head><body>")
    parts.append(f"<h1>Campaign <code>{html.escape(campaign_id)}</code></h1>")
    status = "PASS" if verdict["ok"] else "FAIL"
    css = "pass" if verdict["ok"] else "fail"
    parts.append(f"<p>Regression verdict: <span class='{css}'>{status}</span></p>")
    for problem in verdict["problems"]:
        parts.append(f"<p class='fail'>&#10007; {html.escape(problem)}</p>")
    for warning in verdict["warnings"]:
        parts.append(f"<p class='warn'>&#9888; {html.escape(warning)}</p>")
    if baseline_path:
        parts.append(f"<p>Baseline: <code>{html.escape(baseline_path)}</code></p>")

    parts.append("<h2>Cells</h2><table>")
    parts.append(
        "<tr><th class='l'>cell</th><th>seeds</th><th>commits</th>"
        "<th>head mean (Mops)</th><th>&plusmn;95% CI</th><th>&Delta; vs prev</th>"
        "<th>p</th><th>baseline ratio</th><th class='l'>trend</th></tr>"
    )
    for cell in cells:
        head = cell.head_commit()
        head_values = cell.values(head) if head else []
        summary = stats.summarize(head_values)
        check = trajectory_by_hash.get(cell.spec_hash, {})
        trajectory = check.get("trajectory")
        if trajectory:
            delta = f"{trajectory['rel_change'] * 100:+.1f}%"
            p_text = _fmt(trajectory["p"], 3)
        else:
            delta, p_text = "-", "-"
        baseline_check = check.get("baseline")
        base_text = _fmt(baseline_check["ratio"], 3) if baseline_check else "-"
        means = [stats.summarize(cell.values(c))["mean"] for c in cell.commit_order]
        parts.append(
            f"<tr><td class='l'>{html.escape(cell.label)}</td>"
            f"<td>{summary['n']}</td><td>{len(cell.commit_order)}</td>"
            f"<td>{_fmt(summary['mean'])}</td><td>{_fmt(summary['ci95'])}</td>"
            f"<td>{delta}</td><td>{p_text}</td><td>{base_text}</td>"
            f"<td class='l'>{sparkline_svg(means)}</td></tr>"
        )
    parts.append("</table>")

    for cell in cells:
        parts.append(f"<h2>{html.escape(cell.label)}</h2>")
        parts.append(f"<p>spec <code>{cell.spec_hash}</code></p>")
        parts.append(
            "<table><tr><th class='l'>commit</th><th>n</th><th>mean</th>"
            "<th>stdev</th><th>&plusmn;95% CI</th><th>p50 &micro;s</th>"
            "<th>p99 &micro;s</th><th>rtts/op</th></tr>"
        )
        for commit in cell.commit_order:
            summary = stats.summarize(cell.values(commit))
            aux = cell.aux_by_commit.get(commit, {})
            parts.append(
                f"<tr><td class='l'><code>{html.escape(commit[:12])}</code></td>"
                f"<td>{summary['n']}</td><td>{_fmt(summary['mean'])}</td>"
                f"<td>{_fmt(summary['stdev'])}</td><td>{_fmt(summary['ci95'])}</td>"
                f"<td>{_fmt(aux.get('p50_us', 0.0), 2)}</td>"
                f"<td>{_fmt(aux.get('p99_us', 0.0), 2)}</td>"
                f"<td>{_fmt(aux.get('rtts_per_op', 0.0), 2)}</td></tr>"
            )
        parts.append("</table>")
        parts.append(
            "<details><summary>spec payload</summary><pre>"
            f"{html.escape(json.dumps(cell.spec, indent=2, sort_keys=True))}"
            "</pre></details>"
        )
    parts.append("</body></html>")
    return "\n".join(parts)


def load_baseline(path: str) -> Optional[Dict]:
    """The BENCH_perf.json document, or None when absent/unreadable."""
    try:
        with open(path) as source:
            return json.load(source)
    except (OSError, ValueError):
        return None


def build_report(
    store: CampaignStore,
    campaign_id: str,
    baseline_path: str = "",
    alpha: float = DEFAULT_ALPHA,
    min_drop: float = DEFAULT_MIN_DROP,
    baseline_tolerance: float = DEFAULT_BASELINE_TOLERANCE,
) -> Tuple[str, Dict]:
    """Collect, judge, and render one campaign: ``(html, verdict)``."""
    cells = collect_cells(store, campaign_id)
    baseline = load_baseline(baseline_path) if baseline_path else None
    verdict = regression_verdict(
        cells,
        baseline=baseline,
        alpha=alpha,
        min_drop=min_drop,
        baseline_tolerance=baseline_tolerance,
    )
    document = render_html(campaign_id, cells, verdict, baseline_path=baseline_path)
    return document, verdict
