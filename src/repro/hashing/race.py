"""RACE hashing (Zuo et al., ATC '21) — the closed-addressing comparison
point of Figure 3d.

RACE combines three ideas: associativity, two hash choices, and overflow
colocation.  The table is an array of *bucket groups*; each group holds
two main buckets that share one overflow bucket between them.  A key
hashes to two groups; it may reside in either group's main bucket or the
shared overflow bucket, so a search fetches **four** buckets — the
amplification factor is ``4 × bucket_size``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import HashTableFullError
from repro.hashing.hopscotch import default_hash


def _second_hash(key: int, modulus: int) -> int:
    mixed = (key * 0xC2B2AE3D27D4EB4F + 0x165667B19E3779F9) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 31
    return mixed % modulus


class RaceTable:
    """RACE-style hashing: 2 choices x (main + colocated overflow) buckets.

    Each group occupies ``3 * bucket_size`` entries: main bucket 0,
    overflow, main bucket 1.  A key choosing group g with sub-choice s can
    use main bucket s of the group or the shared overflow.
    """

    def __init__(self, capacity: int, bucket_size: int = 4,
                 hash_fn: Optional[Callable[[int, int], int]] = None) -> None:
        group_entries = 3 * bucket_size
        if capacity % group_entries:
            raise HashTableFullError(
                f"capacity {capacity} not a multiple of group "
                f"size {group_entries}")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self.num_groups = capacity // group_entries
        self._hash = hash_fn or default_hash
        self._keys: List[Optional[int]] = [None] * capacity
        self._values: List[Optional[object]] = [None] * capacity
        self.size = 0

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    @property
    def amplification_factor(self) -> int:
        """Entries fetched per point lookup (4 candidate buckets)."""
        return 4 * self.bucket_size

    def _choices(self, key: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Two (group, main-bucket-index) choices for *key*."""
        first = self._hash(key, self.num_groups)
        second = _second_hash(key, self.num_groups)
        return (first, 0), (second, 1)

    def _bucket_slots(self, group: int, which: int):
        """Slots of a bucket: which 0 = main A, 1 = main B, 2 = overflow."""
        base = group * 3 * self.bucket_size
        order = {0: 0, 1: 2, 2: 1}[which]  # overflow physically in the middle
        start = base + order * self.bucket_size
        return range(start, start + self.bucket_size)

    def _candidate_buckets(self, key: int):
        (g1, s1), (g2, s2) = self._choices(key)
        yield self._bucket_slots(g1, s1)
        yield self._bucket_slots(g1, 2)
        yield self._bucket_slots(g2, s2)
        yield self._bucket_slots(g2, 2)

    def insert(self, key: int, value: object) -> None:
        for slots in self._candidate_buckets(key):
            for slot in slots:
                if self._keys[slot] == key:
                    self._values[slot] = value
                    return
        for slots in self._candidate_buckets(key):
            for slot in slots:
                if self._keys[slot] is None:
                    self._keys[slot] = key
                    self._values[slot] = value
                    self.size += 1
                    return
        raise HashTableFullError(f"all four buckets full for key {key}")

    def lookup(self, key: int):
        for slots in self._candidate_buckets(key):
            for slot in slots:
                if self._keys[slot] == key:
                    return self._values[slot]
        raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyError:
            return False

    def delete(self, key: int) -> None:
        for slots in self._candidate_buckets(key):
            for slot in slots:
                if self._keys[slot] == key:
                    self._keys[slot] = None
                    self._values[slot] = None
                    self.size -= 1
                    return
        raise KeyError(key)
