"""Associative-bucket hashing (the closed-addressing strawman of §3.1.2).

Each key hashes to exactly one bucket of ``bucket_size`` entries; an
insert fails as soon as its bucket is full.  The read amplification
factor equals the bucket size (a search fetches the whole bucket).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import HashTableFullError
from repro.hashing.hopscotch import default_hash


class AssociativeTable:
    """One-choice associative hashing over ``capacity`` entries."""

    def __init__(self, capacity: int, bucket_size: int = 4,
                 hash_fn: Optional[Callable[[int, int], int]] = None) -> None:
        if capacity % bucket_size:
            raise HashTableFullError(
                f"capacity {capacity} not a multiple of bucket {bucket_size}")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self.num_buckets = capacity // bucket_size
        self._hash = hash_fn or default_hash
        self._keys: List[Optional[int]] = [None] * capacity
        self._values: List[Optional[object]] = [None] * capacity
        self.size = 0

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    @property
    def amplification_factor(self) -> int:
        """Entries fetched per point lookup."""
        return self.bucket_size

    def _bucket(self, key: int) -> int:
        return self._hash(key, self.num_buckets)

    def _slots(self, bucket: int):
        start = bucket * self.bucket_size
        return range(start, start + self.bucket_size)

    def insert(self, key: int, value: object) -> None:
        bucket = self._bucket(key)
        for slot in self._slots(bucket):
            if self._keys[slot] == key:
                self._values[slot] = value
                return
        for slot in self._slots(bucket):
            if self._keys[slot] is None:
                self._keys[slot] = key
                self._values[slot] = value
                self.size += 1
                return
        raise HashTableFullError(f"bucket {bucket} full")

    def lookup(self, key: int):
        for slot in self._slots(self._bucket(key)):
            if self._keys[slot] == key:
                return self._values[slot]
        raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyError:
            return False

    def delete(self, key: int) -> None:
        for slot in self._slots(self._bucket(key)):
            if self._keys[slot] == key:
                self._keys[slot] = None
                self._values[slot] = None
                self.size -= 1
                return
        raise KeyError(key)
