"""Hashing schemes: hopscotch (used by CHIME's leaves) and the
closed/open-addressing comparison points of Figure 3d."""

from repro.hashing.associative import AssociativeTable
from repro.hashing.farm import FarmTable
from repro.hashing.hopscotch import (
    HopPlan,
    HopscotchTable,
    default_hash,
    distance,
    find_first_empty,
    plan_insert,
)
from repro.hashing.loadfactor import (
    LoadFactorResult,
    figure_3d_schemes,
    measure_max_load_factor,
)
from repro.hashing.mph import MinimalPerfectHash
from repro.hashing.race import RaceTable

__all__ = [
    "AssociativeTable",
    "FarmTable",
    "HopPlan",
    "HopscotchTable",
    "LoadFactorResult",
    "MinimalPerfectHash",
    "RaceTable",
    "default_hash",
    "distance",
    "figure_3d_schemes",
    "find_first_empty",
    "measure_max_load_factor",
    "plan_insert",
]
