"""FaRM's chained associative hopscotch hashing (NSDI '14), chain disabled.

FaRM fixes the hopscotch neighborhood to **two associative buckets**; a
key hashing to bucket ``b`` may live in bucket ``b`` or ``b+1``.  The
original design chains an overflow block per bucket, which the CHIME paper
disables as DM-unfriendly (§3.1.2) — we do the same.  A search fetches the
two buckets, so the amplification factor is ``2 × bucket_size``.

Inserts displace like hopscotch: if both buckets are full, some resident
key whose *other* bucket has space is moved there (recursively, bounded).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import HashTableFullError
from repro.hashing.hopscotch import default_hash

#: Bound on recursive displacement depth during insertion.  Kept small:
#: FaRM performs a short hop search, not an exhaustive backtracking one,
#: and the search space grows exponentially with depth.
MAX_DISPLACEMENT_DEPTH = 2

#: Marks a slot as transiently occupied while its resident is re-homed,
#: so recursive placement cannot re-use it.
_RESERVED = object()


class FarmTable:
    """FaRM-style hopscotch with a neighborhood of two buckets."""

    def __init__(self, capacity: int, bucket_size: int = 4,
                 hash_fn: Optional[Callable[[int, int], int]] = None) -> None:
        if capacity % bucket_size:
            raise HashTableFullError(
                f"capacity {capacity} not a multiple of bucket {bucket_size}")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self.num_buckets = capacity // bucket_size
        if self.num_buckets < 2:
            raise HashTableFullError("need at least two buckets")
        self._hash = hash_fn or default_hash
        self._keys: List[Optional[int]] = [None] * capacity
        self._values: List[Optional[object]] = [None] * capacity
        self.size = 0

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    @property
    def amplification_factor(self) -> int:
        """Entries fetched per point lookup (two buckets)."""
        return 2 * self.bucket_size

    def _home(self, key: int) -> int:
        return self._hash(key, self.num_buckets)

    def _slots(self, bucket: int):
        start = (bucket % self.num_buckets) * self.bucket_size
        return range(start, start + self.bucket_size)

    def _neighborhood(self, key: int):
        home = self._home(key)
        yield from self._slots(home)
        yield from self._slots(home + 1)

    def insert(self, key: int, value: object) -> None:
        for slot in self._neighborhood(key):
            if self._keys[slot] == key:
                self._values[slot] = value
                return
        if self._try_place(key, value, depth=0):
            self.size += 1
            return
        raise HashTableFullError(f"no space or displacement for key {key}")

    def _try_place(self, key: int, value: object, depth: int) -> bool:
        for slot in self._neighborhood(key):
            if self._keys[slot] is None:
                self._keys[slot] = key
                self._values[slot] = value
                return True
        if depth >= MAX_DISPLACEMENT_DEPTH:
            return False
        # Displace a resident whose other bucket differs from where it sits.
        home = self._home(key)
        for bucket in (home, home + 1):
            for slot in self._slots(bucket):
                resident = self._keys[slot]
                if resident is _RESERVED:
                    continue
                resident_value = self._values[slot]
                self._keys[slot] = _RESERVED  # recursion must not reuse it
                self._values[slot] = None
                if self._try_place(resident, resident_value, depth + 1):
                    self._keys[slot] = key
                    self._values[slot] = value
                    return True
                self._keys[slot] = resident  # undo
                self._values[slot] = resident_value
        return False

    def lookup(self, key: int):
        for slot in self._neighborhood(key):
            if self._keys[slot] == key:
                return self._values[slot]
        raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyError:
            return False

    def delete(self, key: int) -> None:
        for slot in self._neighborhood(key):
            if self._keys[slot] == key:
                self._keys[slot] = None
                self._values[slot] = None
                self.size -= 1
                return
        raise KeyError(key)
