"""Minimal perfect hashing for Outback-style one-RTT routing.

Outback (PAPERS.md) keeps a compact minimal-perfect-hash table on the
compute side: for the bulk-loaded key set, every key maps to a distinct
slot in a value array of exactly ``len(keys)`` entries, so a point
lookup computes its target address locally and reaches the value in a
single READ.  This module implements the classic hash-and-displace (CHD)
construction: keys are grouped into buckets, buckets are seeded largest
first, and each bucket searches for a displacement salt under which all
of its keys land in still-free slots.  Everything is deterministic in
``(keys, seed)``, so every CN builds an identical table and sweep
processes agree byte-for-byte.

Non-member keys still hash *somewhere*; the routed slot stores its key,
and readers verify it after the READ (Outback's own membership story).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import SimulationError

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Displacement salts per bucket tried before giving up; with ~4 keys
#: per bucket the expected search depth is tiny.  Displacement values at
#: or above this bound encode a direct slot assignment instead
#: (``slot = displacement - _MAX_DISPLACEMENT``), the guaranteed
#: fallback for single-key buckets placing into a nearly full table.
_MAX_DISPLACEMENT = 10_000

#: Whole-table rebuilds under derived seeds before declaring the key
#: set degenerate.  A multi-key tail bucket can legitimately exhaust
#: its displacement search when only a handful of slots remain free
#: (the probability all of its keys land exactly on free slots shrinks
#: with the square of the occupancy); re-seeding re-buckets every key,
#: so a fresh attempt is independent.
_MAX_SEED_ATTEMPTS = 16


def _mix(key: int, salt: int) -> int:
    """SplitMix64-style avalanche of *key* under *salt*."""
    x = (key + salt * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class MinimalPerfectHash:
    """A CHD minimal perfect hash over a fixed integer key set.

    ``slot_of(key)`` is a bijection from the construction keys onto
    ``range(len(keys))``.  Keys outside the set get an arbitrary (but
    deterministic) slot — callers must verify the key stored there.
    """

    def __init__(self, keys: Iterable[int], seed: int = 0,
                 keys_per_bucket: int = 4) -> None:
        keys = list(keys)
        if len(set(keys)) != len(keys):
            raise SimulationError("MPH construction requires unique keys")
        self.seed = seed
        self.num_slots = len(keys)
        self.num_buckets = max(1, len(keys) // max(1, keys_per_bucket))
        self._displacements: List[int] = [0] * self.num_buckets
        if keys:
            for attempt in range(_MAX_SEED_ATTEMPTS):
                self.seed = seed + attempt
                self._displacements = [0] * self.num_buckets
                if self._build(keys):
                    return
            raise SimulationError(
                f"MPH construction failed for {len(keys)} keys after "
                f"{_MAX_SEED_ATTEMPTS} seed attempts (degenerate key set?)"
            )

    def _build(self, keys: Sequence[int]) -> bool:
        """One construction attempt under ``self.seed``; False on failure."""
        buckets: Dict[int, List[int]] = {}
        for key in keys:
            buckets.setdefault(self._bucket_of(key), []).append(key)
        taken = [False] * self.num_slots
        # Largest buckets place first, while free slots are plentiful.
        for bucket, members in sorted(
            buckets.items(), key=lambda kv: (-len(kv[1]), kv[0])
        ):
            for displacement in range(1, _MAX_DISPLACEMENT):
                slots = [
                    _mix(key, self.seed + displacement) % self.num_slots
                    for key in members
                ]
                if len(set(slots)) == len(slots) and not any(
                    taken[slot] for slot in slots
                ):
                    for slot in slots:
                        taken[slot] = True
                    self._displacements[bucket] = displacement
                    break
            else:
                if len(members) == 1:
                    # A lone key can always take a free slot directly.
                    slot = taken.index(False)
                    taken[slot] = True
                    self._displacements[bucket] = _MAX_DISPLACEMENT + slot
                    continue
                return False
        return True

    def _bucket_of(self, key: int) -> int:
        return _mix(key, self.seed) % self.num_buckets

    def slot_of(self, key: int) -> int:
        """The routed slot for *key* (verify the key after reading it)."""
        displacement = self._displacements[self._bucket_of(key)]
        if displacement >= _MAX_DISPLACEMENT:
            return displacement - _MAX_DISPLACEMENT
        return _mix(key, self.seed + displacement) % self.num_slots

    def __len__(self) -> int:
        return self.num_slots

    @property
    def routing_bytes(self) -> int:
        """CN-resident size: one 16-bit displacement per bucket."""
        return 2 * self.num_buckets

    def check_perfect(self, keys: Iterable[int]) -> None:
        """Assert the bijection property over *keys* (tests/invariants)."""
        seen = set()
        for key in keys:
            slot = self.slot_of(key)
            if slot in seen:
                raise SimulationError(f"MPH collision at slot {slot}")
            seen.add(slot)
