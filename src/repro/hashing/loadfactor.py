"""Maximum-load-factor measurement for hashing schemes (Figure 3d).

The *maximum load factor* is the fraction of entries filled when the
first insertion fails, averaged over independent trials with random keys.
The paper evaluates tables of 128 entries; the harness takes table
factories so CHIME's leaf-span sweeps (Figures 19a/19b) reuse it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

from repro.errors import HashTableFullError
from repro.hashing.associative import AssociativeTable
from repro.hashing.farm import FarmTable
from repro.hashing.hopscotch import HopscotchTable
from repro.hashing.race import RaceTable


@dataclass(frozen=True)
class LoadFactorResult:
    """Outcome of one scheme's measurement."""

    scheme: str
    amplification_factor: int
    max_load_factor: float
    trials: int


def measure_max_load_factor(table_factory: Callable[[], object],
                            trials: int = 20, seed: int = 7) -> float:
    """Average load factor at first insertion failure across *trials*."""
    rng = random.Random(seed)
    total = 0.0
    for _ in range(trials):
        table = table_factory()
        while True:
            key = rng.getrandbits(60)
            try:
                table.insert(key, key)
            except HashTableFullError:
                break
        total += table.load_factor
    return total / trials


def figure_3d_schemes(capacity: int = 128,
                      bucket_size: int = 4,
                      neighborhoods: tuple = (2, 4, 8, 16)) -> List[LoadFactorResult]:
    """The scheme matrix of Figure 3d: load factor vs amplification.

    Hopscotch appears once per neighborhood size (its amplification is the
    neighborhood size); the bucket-based schemes once per bucket size.
    """
    results: List[LoadFactorResult] = []
    for neighborhood in neighborhoods:
        factor = measure_max_load_factor(
            lambda n=neighborhood: HopscotchTable(capacity, n))
        results.append(LoadFactorResult(
            scheme=f"hopscotch(H={neighborhood})",
            amplification_factor=neighborhood,
            max_load_factor=factor, trials=20))
    for size in (2, 4, 8):
        factor = measure_max_load_factor(
            lambda s=size: AssociativeTable(capacity, s))
        results.append(LoadFactorResult(
            scheme=f"associative(B={size})",
            amplification_factor=size,
            max_load_factor=factor, trials=20))
        factor = measure_max_load_factor(
            lambda s=size: FarmTable(capacity, s))
        results.append(LoadFactorResult(
            scheme=f"farm(B={size})",
            amplification_factor=2 * size,
            max_load_factor=factor, trials=20))
    for size in (2, 4):
        group = 3 * size
        race_capacity = (capacity // group) * group
        factor = measure_max_load_factor(
            lambda s=size, c=race_capacity: RaceTable(c, s))
        results.append(LoadFactorResult(
            scheme=f"race(B={size})",
            amplification_factor=4 * size,
            max_load_factor=factor, trials=20))
    return results
