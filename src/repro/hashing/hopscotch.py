"""Hopscotch hashing (Herlihy, Shavit, Tzafrir — DISC '08).

Two layers live here:

* **pure planning functions** — given entry occupancy/home information,
  compute where a key lands and which hops must occur.  CHIME's leaf
  logic (``repro.core.leaf``) runs these over *fetched* hop ranges, so the
  planner must not assume it can see the whole table.
* :class:`HopscotchTable` — a complete local table used as a reference
  model in tests and by the Figure 3d load-factor experiments.

Terminology (paper §2.3): a key's *home entry* is its hash slot; the
*neighborhood* is the ``H`` consecutive entries starting at the home; the
*hopscotch bitmap* in entry ``e`` records which of the ``H`` entries
starting at ``e`` hold keys whose home is ``e``; the *hop range* is the
smallest entry range touched by an insertion's hop sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import HashTableFullError


def default_hash(key: int, capacity: int) -> int:
    """Fibonacci-style multiplicative hash onto [0, capacity)."""
    mixed = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 29
    return mixed % capacity


def distance(home: int, pos: int, capacity: int) -> int:
    """Circular forward distance from *home* to *pos*."""
    return (pos - home) % capacity


@dataclass
class HopPlan:
    """The outcome of planning one hopscotch insertion.

    ``moves`` lists ``(src, dst)`` entry moves in execution order; after
    applying them, the new key goes to ``target``.  ``touched`` is the set
    of all entry positions the plan reads or writes (for hop-range span
    computation), including the home entries whose bitmaps change.
    """

    target: int
    moves: List[Tuple[int, int]] = field(default_factory=list)
    touched: List[int] = field(default_factory=list)


def find_first_empty(occupied: Callable[[int], bool], home: int,
                     capacity: int, limit: Optional[int] = None) -> Optional[int]:
    """Linear-probe from *home* for the first empty entry (circular)."""
    probes = capacity if limit is None else min(limit, capacity)
    for step in range(probes):
        pos = (home + step) % capacity
        if not occupied(pos):
            return pos
    return None


def plan_insert(home: int, empty: int, capacity: int, neighborhood: int,
                home_of: Callable[[int], Optional[int]]) -> Optional[HopPlan]:
    """Plan the hop sequence moving *empty* back into *home*'s neighborhood.

    *home_of(pos)* must return the home entry of the key at *pos* (or None
    for empty positions — only consulted for occupied ones).  Returns None
    when no feasible hop sequence exists (the caller splits the node or
    resizes the table).

    The planner always swaps with the **farthest** movable key (the one
    whose home is earliest), which is the property CHIME's reused-bitmap
    synchronization proof relies on (§4.1.2): the new key in a hop entry
    never shares a home with the key it displaced.
    """
    plan = HopPlan(target=empty, touched=[home, empty])
    guard = 0
    while distance(home, empty, capacity) >= neighborhood:
        guard += 1
        if guard > capacity:
            raise HashTableFullError("hop planning did not converge")
        moved = False
        # Scan candidates from farthest (H-1 back) to nearest.
        for back in range(neighborhood - 1, 0, -1):
            candidate = (empty - back) % capacity
            candidate_home = home_of(candidate)
            if candidate_home is None:
                continue
            if distance(candidate_home, empty, capacity) < neighborhood:
                plan.moves.append((candidate, empty))
                plan.touched.append(candidate)
                plan.touched.append(candidate_home)
                empty = candidate
                moved = True
                break
        if not moved:
            return None
    plan.target = empty
    return plan


class HopscotchTable:
    """A local hopscotch hash table (reference model + experiments)."""

    def __init__(self, capacity: int, neighborhood: int = 8,
                 hash_fn: Optional[Callable[[int, int], int]] = None) -> None:
        if neighborhood < 1 or neighborhood > capacity:
            raise HashTableFullError(
                f"neighborhood {neighborhood} invalid for capacity {capacity}")
        self.capacity = capacity
        self.neighborhood = neighborhood
        self._hash = hash_fn or default_hash
        self._keys: List[Optional[int]] = [None] * capacity
        self._values: List[Optional[object]] = [None] * capacity
        self._bitmaps: List[int] = [0] * capacity
        self.size = 0

    # -- introspection -------------------------------------------------------

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    def home_of_key(self, key: int) -> int:
        return self._hash(key, self.capacity)

    def home_of_pos(self, pos: int) -> Optional[int]:
        """Home entry of the key stored at *pos*, or None if empty."""
        key = self._keys[pos]
        if key is None:
            return None
        return self.home_of_key(key)

    def bitmap(self, entry: int) -> int:
        return self._bitmaps[entry]

    def items(self):
        for pos, key in enumerate(self._keys):
            if key is not None:
                yield key, self._values[pos]

    # -- operations ----------------------------------------------------------

    def lookup(self, key: int):
        """Return the value for *key*, or raise KeyError."""
        home = self.home_of_key(key)
        bitmap = self._bitmaps[home]
        for offset in range(self.neighborhood):
            if bitmap & (1 << offset):
                pos = (home + offset) % self.capacity
                if self._keys[pos] == key:
                    return self._values[pos]
        raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyError:
            return False

    def insert(self, key: int, value: object) -> HopPlan:
        """Insert or overwrite; returns the executed :class:`HopPlan`."""
        home = self.home_of_key(key)
        # Update in place if the key exists.
        bitmap = self._bitmaps[home]
        for offset in range(self.neighborhood):
            if bitmap & (1 << offset):
                pos = (home + offset) % self.capacity
                if self._keys[pos] == key:
                    self._values[pos] = value
                    return HopPlan(target=pos, touched=[pos])
        empty = find_first_empty(lambda p: self._keys[p] is not None,
                                 home, self.capacity)
        if empty is None:
            raise HashTableFullError("no empty entry in table")
        plan = plan_insert(home, empty, self.capacity, self.neighborhood,
                           self.home_of_pos)
        if plan is None:
            raise HashTableFullError(
                f"no feasible hop sequence for key {key} (home {home})")
        for src, dst in plan.moves:
            self._apply_move(src, dst)
        self._place(plan.target, key, value, home)
        self.size += 1
        return plan

    def delete(self, key: int) -> None:
        """Remove *key* or raise KeyError."""
        home = self.home_of_key(key)
        bitmap = self._bitmaps[home]
        for offset in range(self.neighborhood):
            if bitmap & (1 << offset):
                pos = (home + offset) % self.capacity
                if self._keys[pos] == key:
                    self._keys[pos] = None
                    self._values[pos] = None
                    self._bitmaps[home] &= ~(1 << offset)
                    self.size -= 1
                    return
        raise KeyError(key)

    # -- internals -----------------------------------------------------------

    def _apply_move(self, src: int, dst: int) -> None:
        key = self._keys[src]
        home = self.home_of_key(key)
        self._keys[dst] = key
        self._values[dst] = self._values[src]
        self._keys[src] = None
        self._values[src] = None
        self._bitmaps[home] &= ~(1 << distance(home, src, self.capacity))
        self._bitmaps[home] |= 1 << distance(home, dst, self.capacity)

    def _place(self, pos: int, key: int, value: object, home: int) -> None:
        self._keys[pos] = key
        self._values[pos] = value
        self._bitmaps[home] |= 1 << distance(home, pos, self.capacity)

    def check_invariants(self) -> None:
        """Assert bitmap/occupancy consistency (used by property tests)."""
        for entry in range(self.capacity):
            for offset in range(self.neighborhood):
                pos = (entry + offset) % self.capacity
                flagged = bool(self._bitmaps[entry] & (1 << offset))
                holds = (self._keys[pos] is not None
                         and self.home_of_key(self._keys[pos]) == entry)
                assert flagged == holds, (
                    f"bitmap of entry {entry} bit {offset} is {flagged}, "
                    f"occupancy says {holds}")
